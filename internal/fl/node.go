package fl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/xrand"
)

// This file is the node runtime extracted from the in-process engine: a
// ServerNode that owns the server half of a federation (aggregation state,
// the scheduling policy, the traffic ledger and evaluation collection) and
// a ClientNode that owns one client's half (the model, local training and
// upload quantization). The two halves speak the wire protocol of wire.go
// over any transport.Conn — in-memory channels for deterministic
// single-process federations, real TCP sockets for `fedserver` plus N
// `fedclient` processes.
//
// The node scheduler is the synchronous barrier: each round samples a
// cohort with the same RNG stream the simulation's sync scheduler uses, so
// a node federation at seed S visits exactly the cohorts the in-process
// run at seed S does, and full-precision runs land within floating-point
// parity of it (aggregation happens in the sharded accumulators, whose
// summation order differs immaterially from the one-shot average). The
// asynchronous and semi-synchronous schedules remain an inproc-engine
// feature: they are defined in virtual time, which has no meaning across
// real processes — see DESIGN.md §8 for the determinism boundary.
//
// Fault tolerance: a client whose connection dies mid-run is removed from
// the federation — subsequent cohorts skip it, a pending barrier stops
// waiting for it — and the round commits with the survivors, so killing
// one client process degrades capacity instead of wedging the run. A
// client that reports an algorithm error (as opposed to dying) aborts the
// federation: that is a bug, not churn.

// NodeConfig configures a ServerNode federation.
type NodeConfig struct {
	// Clients is the fleet size; the server waits for exactly this many
	// joins before round 1.
	Clients int
	// Rounds is the number of barrier rounds.
	Rounds int
	// SampleRate is the per-round cohort fraction, in (0, 1].
	SampleRate float64
	// BatchSize is broadcast to clients in the welcome message.
	BatchSize int
	// Seed drives cohort sampling (use the simulation's seed for parity).
	Seed int64
	// EvalEvery evaluates accuracy every n rounds (default 1).
	EvalEvery int
	// Codec frames payload vectors; it must match the transport's codec so
	// quantization and accounting agree with what crosses the wire.
	Codec comm.Codec
	// Shards is the sharded-accumulator shard count (default
	// tensor.Workers()).
	Shards int
	// OnRound, when non-nil, receives every evaluation point the moment it
	// commits — fedserver streams its CSV rows through it so orchestration
	// (and the churn smoke test) can observe round progress live.
	OnRound func(RoundMetrics)
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.Shards <= 0 {
		c.Shards = tensor.Workers()
	}
	return c
}

// ServerNode runs the server half of a federation over a transport.
type ServerNode struct {
	cfg  NodeConfig
	algo WireAlgorithm
	// Ledger records what actually crosses the wire: message frames with
	// their transport framing, plus per-connection handshake bytes.
	Ledger  *comm.Ledger
	History []RoundMetrics

	// connMu guards the connection table between the accept path and the
	// cancellation watcher.
	connMu sync.Mutex
}

// NewServerNode builds a server node.
func NewServerNode(algo WireAlgorithm, cfg NodeConfig) *ServerNode {
	ledger := comm.NewLedger()
	ledger.SetCodec(cfg.Codec)
	return &ServerNode{cfg: cfg.withDefaults(), algo: algo, Ledger: ledger}
}

// inbound is one reader-goroutine delivery: a decoded message or the error
// that ended the connection.
type inbound struct {
	id   int
	msg  *wireMsg
	wire int64
	err  error
}

// Serve accepts cfg.Clients joins on the listener, then drives the barrier
// rounds to completion and returns the metrics history. The listener is
// closed on return. Cancelling ctx tears the federation down and returns
// ctx.Err().
func (n *ServerNode) Serve(ctx context.Context, ln transport.Listener) ([]RoundMetrics, error) {
	defer ln.Close()
	k := n.cfg.Clients
	if k <= 0 {
		return nil, fmt.Errorf("fl: server node needs a positive client count")
	}
	conns := make([]transport.Conn, k)
	closeAll := func() {
		n.connMu.Lock()
		defer n.connMu.Unlock()
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	defer closeAll()

	// ctx cancellation unblocks Accept and Recv by closing the endpoints.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
			closeAll()
		case <-stop:
		}
	}()

	joins, err := n.gather(ctx, ln, conns)
	if err != nil {
		return nil, err
	}
	if err := n.algo.WireSetup(joins, n.cfg.Shards); err != nil {
		return nil, fmt.Errorf("fl: %s wire setup: %w", n.algo.Name(), err)
	}
	welcome := &wireMsg{kind: msgWelcome, name: n.algo.Name(), ints: []int64{
		int64(k), int64(n.cfg.Rounds), int64(n.cfg.BatchSize), int64(n.cfg.EvalEvery),
	}}
	for id, c := range conns {
		wire, err := c.Send(encodeMsg(welcome, n.cfg.Codec))
		if err != nil {
			return nil, fmt.Errorf("fl: welcoming client %d: %w", id, err)
		}
		n.Ledger.AddDown(id, wire)
	}

	events := make(chan inbound, k)
	for id := range conns {
		go n.reader(id, conns[id], events, stop)
	}
	return n.rounds(ctx, conns, events)
}

// gather accepts connections until every expected client has joined.
// Handshake failures on individual connections are tolerated (the next
// accept proceeds); a closed listener or cancelled context is fatal.
func (n *ServerNode) gather(ctx context.Context, ln transport.Listener, conns []transport.Conn) ([]WireJoin, error) {
	k := len(conns)
	joins := make([]WireJoin, k)
	failures := 0
	for joined := 0; joined < k; {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// A peer that failed the transport handshake (wrong dtype, bad
			// magic) must not kill a federation mid-assembly — but a dead
			// listener ends it, and a persistently erroring one (fd
			// exhaustion, say) must not busy-spin: back off and eventually
			// give up instead of pinning a core forever.
			if errors.Is(err, transport.ErrClosed) {
				return nil, fmt.Errorf("fl: server listener closed with %d of %d clients joined: %w", joined, k, err)
			}
			failures++
			if failures >= maxAcceptFailures {
				return nil, fmt.Errorf("fl: %d consecutive accept failures with %d of %d clients joined, last: %w",
					failures, joined, k, err)
			}
			time.Sleep(acceptBackoff)
			continue
		}
		failures = 0
		frame, wire, err := conn.Recv()
		if err != nil {
			conn.Close()
			continue
		}
		m, err := decodeMsg(frame)
		if err != nil || m.kind != msgJoin || len(m.ints) != joinIntCount {
			conn.Close()
			continue
		}
		id := int(m.ints[joinID])
		if id < 0 || id >= k {
			n.refuse(conn, fmt.Sprintf("client id %d out of range [0, %d)", id, k))
			continue
		}
		if conns[id] != nil {
			n.refuse(conn, fmt.Sprintf("client id %d already joined", id))
			continue
		}
		if m.name != n.algo.Name() {
			n.refuse(conn, fmt.Sprintf("client runs %q, server runs %q", m.name, n.algo.Name()))
			continue
		}
		n.connMu.Lock()
		conns[id] = conn
		n.connMu.Unlock()
		joins[id] = WireJoin{
			ID:            id,
			TrainSize:     int(m.ints[joinTrainSize]),
			FeatDim:       int(m.ints[joinFeatDim]),
			NumClasses:    int(m.ints[joinNumClasses]),
			NumParams:     int(m.ints[joinNumParams]),
			NumClassifier: int(m.ints[joinNumClassifier]),
			Init:          m.vecs,
		}
		hsSent, hsRecv := conn.HandshakeBytes()
		n.Ledger.AddUp(id, wire+hsRecv)
		if hsSent > 0 {
			n.Ledger.AddDown(id, hsSent)
		}
		joined++
	}
	return joins, nil
}

// refuse rejects a join with an explanatory error message and closes the
// connection.
func (n *ServerNode) refuse(conn transport.Conn, reason string) {
	conn.Send(encodeMsg(&wireMsg{kind: msgErr, name: reason}, n.cfg.Codec))
	conn.Close()
}

// Accept-failure policy during join assembly: one bad peer (failed
// handshake) is routine, but a stream of errors means the listener itself
// is sick — back off between failures and give up after a bound rather
// than spinning or hanging forever.
const (
	maxAcceptFailures = 1000
	acceptBackoff     = 10 * time.Millisecond
)

// reader pumps one connection's messages into the shared event channel
// until the connection dies or the federation stops consuming.
func (n *ServerNode) reader(id int, conn transport.Conn, events chan<- inbound, stop <-chan struct{}) {
	deliver := func(ev inbound) bool {
		select {
		case events <- ev:
			return true
		case <-stop:
			return false
		}
	}
	for {
		frame, wire, err := conn.Recv()
		if err != nil {
			deliver(inbound{id: id, err: err})
			return
		}
		m, err := decodeMsg(frame)
		if err != nil {
			deliver(inbound{id: id, err: err})
			return
		}
		if !deliver(inbound{id: id, msg: m, wire: wire}) {
			return
		}
	}
}

// rounds drives the barrier schedule.
func (n *ServerNode) rounds(ctx context.Context, conns []transport.Conn, events <-chan inbound) ([]RoundMetrics, error) {
	k := len(conns)
	rng, _ := xrand.NewRand(n.cfg.Seed)
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := k
	start := time.Now()

	kill := func(id int) {
		if alive[id] {
			alive[id] = false
			aliveCount--
			conns[id].Close()
		}
	}

	for t := 1; t <= n.cfg.Rounds; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if aliveCount == 0 {
			return nil, fmt.Errorf("fl: round %d: every client has left the federation", t)
		}
		// The cohort draw consumes the same RNG stream as the simulation's
		// sync scheduler; dead clients are filtered after the draw so the
		// surviving schedule stays deterministic.
		cohort := SampleCohort(rng, k, n.cfg.SampleRate, 0)
		participants := cohort[:0]
		for _, id := range cohort {
			if alive[id] {
				participants = append(participants, id)
			}
		}

		// Broadcast.
		dispatched := make(map[int]bool, len(participants))
		for _, id := range participants {
			vecs, err := n.algo.WireDispatch(id)
			if err != nil {
				return nil, fmt.Errorf("fl: %s dispatch to client %d: %w", n.algo.Name(), id, err)
			}
			wire, err := conns[id].Send(encodeMsg(&wireMsg{kind: msgDispatch, a: uint64(t), vecs: vecs}, n.cfg.Codec))
			if err != nil {
				kill(id)
				continue
			}
			n.Ledger.AddDown(id, wire)
			dispatched[id] = true
		}

		// Barrier: collect one update per dispatched client that is still
		// alive.
		updates := make(map[int]*Update, len(dispatched))
		for len(dispatched) > 0 {
			var ev inbound
			select {
			case ev = <-events:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if ev.err != nil {
				kill(ev.id)
				delete(dispatched, ev.id)
				continue
			}
			switch ev.msg.kind {
			case msgUpdate:
				if !dispatched[ev.id] {
					return nil, fmt.Errorf("fl: client %d sent an update it was not asked for", ev.id)
				}
				n.Ledger.AddUp(ev.id, ev.wire)
				updates[ev.id] = &Update{
					Client: ev.id,
					Scale:  bitsF64(ev.msg.b),
					Vecs:   ev.msg.vecs,
					Counts: ev.msg.counts,
				}
				delete(dispatched, ev.id)
			case msgErr:
				return nil, fmt.Errorf("fl: client %d failed: %s", ev.id, ev.msg.name)
			default:
				return nil, fmt.Errorf("fl: client %d sent unexpected message %#x during round %d", ev.id, ev.msg.kind, t)
			}
		}

		// Aggregate in client-id order (deterministic), then commit.
		ids := make([]int, 0, len(updates))
		for id := range updates {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			u := updates[id]
			u.Weight = u.Scale
			if err := n.algo.WireApply(u); err != nil {
				return nil, fmt.Errorf("fl: %s apply from client %d: %w", n.algo.Name(), id, err)
			}
		}
		if err := n.algo.WireCommit(); err != nil {
			return nil, fmt.Errorf("fl: %s commit: %w", n.algo.Name(), err)
		}

		if t%n.cfg.EvalEvery == 0 || t == n.cfg.Rounds {
			m, err := n.evaluate(ctx, t, conns, alive, events, kill)
			if err != nil {
				return nil, err
			}
			traffic := n.Ledger.EndRound(t)
			m.Round = t
			m.LocalEpochs = t * n.algo.EpochsPerRound()
			m.UpBytes = traffic.UpBytes
			m.DownBytes = traffic.DownBytes
			m.SimTime = time.Since(start).Seconds()
			n.History = append(n.History, m)
			if n.cfg.OnRound != nil {
				n.cfg.OnRound(m)
			}
		} else {
			n.Ledger.EndRound(t)
		}
	}

	// Graceful shutdown: every surviving client gets a stop message.
	for id, c := range conns {
		if alive[id] {
			if wire, err := c.Send(encodeMsg(&wireMsg{kind: msgStop}, n.cfg.Codec)); err == nil {
				n.Ledger.AddDown(id, wire)
			}
		}
	}
	return n.History, nil
}

// evaluate asks every live client for its personalized test accuracy and
// aggregates mean and std. Dead clients carry NaN in PerClient and are
// excluded from the mean.
func (n *ServerNode) evaluate(ctx context.Context, round int, conns []transport.Conn, alive []bool, events <-chan inbound, kill func(int)) (RoundMetrics, error) {
	waiting := make(map[int]bool)
	for id, c := range conns {
		if !alive[id] {
			continue
		}
		wire, err := c.Send(encodeMsg(&wireMsg{kind: msgEvalReq, a: uint64(round)}, n.cfg.Codec))
		if err != nil {
			kill(id)
			continue
		}
		n.Ledger.AddDown(id, wire)
		waiting[id] = true
	}
	per := make([]float64, len(conns))
	for i := range per {
		per[i] = math.NaN()
	}
	for len(waiting) > 0 {
		var ev inbound
		select {
		case ev = <-events:
		case <-ctx.Done():
			return RoundMetrics{}, ctx.Err()
		}
		if ev.err != nil {
			kill(ev.id)
			delete(waiting, ev.id)
			continue
		}
		switch ev.msg.kind {
		case msgEvalRes:
			if !waiting[ev.id] {
				return RoundMetrics{}, fmt.Errorf("fl: client %d sent an unsolicited evaluation", ev.id)
			}
			n.Ledger.AddUp(ev.id, ev.wire)
			per[ev.id] = bitsF64(ev.msg.b)
			delete(waiting, ev.id)
		case msgErr:
			return RoundMetrics{}, fmt.Errorf("fl: client %d failed: %s", ev.id, ev.msg.name)
		default:
			return RoundMetrics{}, fmt.Errorf("fl: client %d sent unexpected message %#x during evaluation", ev.id, ev.msg.kind)
		}
	}
	var accs []float64
	for _, v := range per {
		if !math.IsNaN(v) {
			accs = append(accs, v)
		}
	}
	mean, std := MeanStd(accs)
	return RoundMetrics{MeanAcc: mean, StdAcc: std, PerClient: per}, nil
}

// ClientNode runs one client's half of a federation over a transport.
type ClientNode struct {
	Client *Client
	Algo   WireAlgorithm
}

// Run joins the federation over conn and serves dispatch and evaluation
// requests until the server sends a stop (nil) or the connection dies
// (error). Cancelling ctx closes the connection and returns ctx.Err().
func (cn *ClientNode) Run(ctx context.Context, conn transport.Conn) error {
	defer conn.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	c := cn.Client
	codec := conn.Hello().Codec
	init, err := cn.Algo.WireInit(c)
	if err != nil {
		return fmt.Errorf("fl: client %d init payload: %w", c.ID, err)
	}
	join := &wireMsg{kind: msgJoin, name: cn.Algo.Name(), vecs: init, ints: make([]int64, joinIntCount)}
	join.ints[joinID] = int64(c.ID)
	join.ints[joinTrainSize] = int64(len(c.Train))
	if c.Model != nil {
		join.ints[joinFeatDim] = int64(c.Model.Cfg.FeatDim)
		join.ints[joinNumClasses] = int64(c.Model.Cfg.NumClasses)
		join.ints[joinNumParams] = int64(nn.NumParams(c.Model.Params()))
		join.ints[joinNumClassifier] = int64(nn.NumParams(c.Model.ClassifierParams()))
	}
	if _, err := conn.Send(encodeMsg(join, codec)); err != nil {
		return fmt.Errorf("fl: client %d join: %w", c.ID, err)
	}

	batch := 32
	welcomed := false
	for {
		frame, _, err := conn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fl: client %d: connection lost: %w", c.ID, err)
		}
		m, err := decodeMsg(frame)
		if err != nil {
			return fmt.Errorf("fl: client %d: %w", c.ID, err)
		}
		switch m.kind {
		case msgWelcome:
			if len(m.ints) != welIntCount {
				return fmt.Errorf("fl: client %d: malformed welcome", c.ID)
			}
			if m.name != cn.Algo.Name() {
				return fmt.Errorf("fl: client %d runs %q, server runs %q", c.ID, cn.Algo.Name(), m.name)
			}
			batch = int(m.ints[welBatch])
			welcomed = true
		case msgDispatch:
			if !welcomed {
				return fmt.Errorf("fl: client %d: dispatch before welcome", c.ID)
			}
			u, err := cn.Algo.WireLocal(c, batch, m.vecs)
			if err != nil {
				conn.Send(encodeMsg(&wireMsg{kind: msgErr, name: err.Error()}, codec))
				return fmt.Errorf("fl: client %d local round: %w", c.ID, err)
			}
			up := &wireMsg{kind: msgUpdate, a: m.a, b: f64bits(u.Scale), vecs: u.Vecs, counts: u.Counts}
			if _, err := conn.Send(encodeMsg(up, codec)); err != nil {
				return fmt.Errorf("fl: client %d upload: %w", c.ID, err)
			}
		case msgEvalReq:
			res := &wireMsg{kind: msgEvalRes, a: m.a, b: f64bits(c.EvalAccuracy())}
			if _, err := conn.Send(encodeMsg(res, codec)); err != nil {
				return fmt.Errorf("fl: client %d evaluation: %w", c.ID, err)
			}
		case msgStop:
			return nil
		case msgErr:
			return fmt.Errorf("fl: client %d refused by server: %s", c.ID, m.name)
		default:
			return fmt.Errorf("fl: client %d: unexpected message %#x", c.ID, m.kind)
		}
	}
}
