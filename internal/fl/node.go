package fl

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/xrand"
)

// This file is the server half of the node runtime: a ServerNode that owns
// aggregation state, the scheduling policy, the traffic ledger and
// evaluation collection, speaking the wire protocol of wire.go over any
// transport.Listener — in-memory channels for deterministic single-process
// federations, real TCP sockets for `fedserver` plus N `fedclient`
// processes. The session/heartbeat/reconnect machinery lives in the
// PeerTable (peertable.go), shared with the edge AggregatorNode
// (node_agg.go); the client half lives in node_client.go.
//
// The runtime is a single-goroutine event loop. Reader goroutines (one per
// live connection) and the accept loop deliver decoded messages and
// handshaken connections into channels; the loop serializes every state
// transition — scheduling, aggregation, session management, heartbeats,
// checkpoints — so there is no locking discipline to get wrong. The three
// schedulers mirror the in-process engine's semantics:
//
//   - sync: the classic barrier. Each round samples a cohort from the same
//     RNG stream the simulation's sync scheduler uses, so a node federation
//     at seed S visits exactly the cohorts the in-process run at seed S
//     does, and full-precision runs land within floating-point parity.
//   - async: FedBuff-style bounded staleness. Idle clients are redispatched
//     immediately; an update more than MaxStaleness commits old is dropped,
//     a fresher one aggregates with weight Scale·1/(1+Decay·staleness); the
//     server commits every cohort-size applies.
//   - semisync: K-of-N quorum. A cohort is dispatched, the server commits
//     after Quorum applies; stragglers from earlier cohorts still count.
//
// The wire schedulers are parity-tested against the inproc engine at a
// tolerance, not byte-identically: real processes have no virtual clock —
// see DESIGN.md §8 for the determinism boundary and §9 for the wire
// fault-tolerance contract this file implements.
//
// Fault tolerance: a client whose connection dies enters a bounded
// reconnect window. It keeps its identity — the server-issued session token
// presented in the re-dial's transport hello names the session — and on
// adoption the server resends whatever the client still owes (a dispatch,
// an evaluation request). A client that stays gone past the window degrades
// to churn semantics: subsequent cohorts skip it, pending barriers stop
// waiting for it, its PerClient slot reads NaN. Churn never aborts the run;
// only an algorithm error reported by a client does (that is a bug, not
// churn). The server's own crash is survivable too: at every commit
// boundary it can snapshot its full state — committed round, algorithm
// server half, ledger, history, RNG position, session table and join
// declarations — through cfg.Checkpoint, and cfg.Resume rebuilds a server
// mid-run whose still-held tokens remain valid.
//
// Tree topology: with cfg.Aggregators > 0 the server becomes the root of a
// 2-level tree whose downstream peers are AggregatorNodes, each fronting a
// contiguous range of the client-id space (TreeSplit). The root still
// samples cohorts from the same RNG stream and still calls WireDispatch
// once per cohort member — payloads travel batched per subtree — so the
// model arithmetic is flat fan-in regrouped, not a different algorithm. A
// dead aggregator churns its whole subtree after the reconnect window;
// checkpoints remain root-only (and are currently mutually exclusive with
// the tree, see Serve). See DESIGN.md §11.

// DefaultHeartbeat is the server's liveness-probe cadence when the config
// sets none.
const DefaultHeartbeat = time.Second

// DefaultReconnectWindow is how long a disconnected client keeps its
// session before degrading to churn, when the config sets none.
const DefaultReconnectWindow = 10 * time.Second

// joinTimeout bounds how long an accepted connection may sit silent before
// its join frame arrives; a peer that handshakes and stalls cannot pin an
// accept slot forever.
const joinTimeout = 30 * time.Second

// NodeConfig configures a ServerNode federation.
type NodeConfig struct {
	// Clients is the fleet size; the server waits for exactly this many
	// joins before round 1.
	Clients int
	// Aggregators, when positive, runs the server as the root of a 2-level
	// tree: it accepts that many AggregatorNode joins (each presenting a
	// contiguous child range from TreeSplit) instead of individual clients.
	// 0 is the flat topology. Tree mode requires the sync scheduler and is
	// mutually exclusive with Checkpoint/Resume.
	Aggregators int
	// Rounds is the number of committed rounds.
	Rounds int
	// SampleRate is the per-round cohort fraction, in (0, 1].
	SampleRate float64
	// BatchSize is broadcast to clients in the welcome message.
	BatchSize int
	// Seed drives cohort sampling (use the simulation's seed for parity)
	// and session-token issuance.
	Seed int64
	// EvalEvery evaluates accuracy every n rounds (default 1).
	EvalEvery int
	// EvalSample, when positive and smaller than the fleet, requests
	// accuracy from a fresh sample of that many clients per evaluation
	// point instead of all of them; unsampled clients stay NaN in
	// PerClient and are excluded from the mean. The sample comes from a
	// dedicated RNG stream, so cohort sampling is unaffected. 0 sweeps
	// every unchurned client (the historical behavior).
	EvalSample int
	// Codec frames payload vectors; it must match the transport's codec so
	// quantization and accounting agree with what crosses the wire.
	Codec comm.Codec
	// TopK, in (0, 1), sparsifies client weight uploads to the ceil(TopK·n)
	// largest-|v| elements per vector (TOPK frames, kept values stored at
	// Codec). 0 keeps uploads dense. It must match the transport's
	// negotiated spec.
	TopK float64
	// Delta frames client weight uploads as residuals against the last
	// upload the server decoded on the same connection (DELTA frames);
	// reconnects fall back to a dense basis automatically. It must match
	// the transport's negotiated spec.
	Delta bool
	// Shards is the sharded-accumulator shard count (default
	// tensor.Workers()).
	Shards int
	// Sched selects the scheduling policy (default SchedSync).
	Sched SchedulerKind
	// MaxStaleness bounds async staleness: an update whose dispatch-time
	// model version is more than MaxStaleness commits old is dropped
	// (default 8).
	MaxStaleness int
	// Decay is the staleness decay α: an update s commits stale aggregates
	// with weight Scale·1/(1+α·s). 0 disables decay.
	Decay float64
	// Quorum is the semisync K: commit after K applied updates (default
	// ⌈cohort/2⌉, capped at the cohort size).
	Quorum int
	// DType is the fleet's model element type, recorded in checkpoints so a
	// resume at a different dtype is rejected instead of silently changing
	// the numerics.
	DType tensor.DType
	// Heartbeat is the liveness-probe cadence (default DefaultHeartbeat).
	// The server sends a heartbeat to every connected client each interval;
	// clients echo it. Traffic, not progress, is the liveness signal.
	Heartbeat time.Duration
	// DeadAfter is how long a connection may sit silent before the server
	// declares it hung and tears it down (default 5×Heartbeat). The client
	// applies the same bound to the server, learned from the welcome.
	DeadAfter time.Duration
	// ReconnectWindow is how long a disconnected client keeps its session
	// before degrading to churn (default DefaultReconnectWindow).
	ReconnectWindow time.Duration
	// Checkpoint, when non-nil, receives a full server snapshot at every
	// CheckpointEvery-th commit boundary, after the round's metrics and
	// traffic are accounted. A checkpoint error aborts the run — a server
	// that silently stops persisting is worse than one that stops.
	Checkpoint func(*Snapshot) error
	// CheckpointEvery is the commit cadence of Checkpoint (default 1).
	CheckpointEvery int
	// Resume, when non-nil, restores server state from a snapshot before
	// accepting connections: the federation continues at the checkpointed
	// round, and the session tokens clients already hold remain valid.
	Resume *Snapshot
	// OnRound, when non-nil, receives every evaluation point the moment it
	// commits — fedserver streams its CSV rows through it so orchestration
	// (and the churn smoke test) can observe round progress live.
	OnRound func(RoundMetrics)
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.Shards <= 0 {
		c.Shards = tensor.Workers()
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 8
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5 * c.Heartbeat
	}
	if c.ReconnectWindow <= 0 {
		c.ReconnectWindow = DefaultReconnectWindow
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	return c
}

// WireSpec is the connection-level framing spec the config describes —
// what transport.Options.Spec must carry for the handshake to agree with
// the node's framing.
func (c NodeConfig) WireSpec() comm.Spec { return comm.NewSpec(c.Codec, c.TopK, c.Delta) }

// NodeStats counts the failure-path events of one Serve call, for
// operator-facing summaries and tests. Read it after Serve returns.
type NodeStats struct {
	// Reconnects counts adopted re-dials (session resumed).
	Reconnects int
	// Disconnects counts connection losses, including hung peers torn down
	// by the dead-interval check.
	Disconnects int
	// Churned counts sessions that exhausted the reconnect window.
	Churned int
	// Drops counts async updates discarded for excess staleness.
	Drops int
	// Ignored counts tolerated protocol noise: duplicate or stale messages
	// discarded by the dedup rules.
	Ignored int
	// Resends counts owed dispatch/eval frames replayed on adoption.
	Resends int
	// Commits counts committed rounds (equals the round count the run
	// reached).
	Commits int
}

// ServerNode runs the server half of a federation over a transport.
type ServerNode struct {
	cfg  NodeConfig
	algo WireAlgorithm
	// Ledger records what actually crosses the wire: message frames with
	// their transport framing, plus per-connection handshake bytes —
	// heartbeats and re-handshakes included.
	Ledger  *comm.Ledger
	History []RoundMetrics
	// Stats summarizes the run's failure-path events once Serve returns.
	Stats NodeStats
}

// NewServerNode builds a server node.
func NewServerNode(algo WireAlgorithm, cfg NodeConfig) *ServerNode {
	ledger := comm.NewLedger()
	ledger.SetCodec(cfg.Codec)
	return &ServerNode{cfg: cfg.withDefaults(), algo: algo, Ledger: ledger}
}

// serverRun is the single-goroutine event loop driving one Serve call.
type serverRun struct {
	n    *ServerNode
	cfg  NodeConfig
	algo WireAlgorithm
	k    int
	// wc frames the server's own encodes. The server never encodes an
	// upload kind, so its frames are always dense; upload decoding runs
	// through each reader's per-connection wireCodec in the PeerTable.
	wc *wireCodec

	// pt owns the downstream sessions (clients in flat mode, aggregators
	// in tree mode); sessions aliases pt's table for direct indexing.
	pt       *PeerTable
	sessions []*peerSession

	// Tree-topology state: bounds is the TreeSplit partition, and
	// clientChurned marks the union of churned subtrees over the global
	// client-id space (evaluation and cohort filtering consult it).
	tree          bool
	aggs          int
	bounds        []int
	clientChurned []bool

	rng     *rand.Rand
	rngSrc  *xrand.Source
	evalRng *rand.Rand
	evalSrc *xrand.Source

	version     int // committed rounds so far
	applied     int // applies since the last commit (async/semisync)
	cohortSize  int
	commitEvery int
	semiOpen    bool // a semisync cohort is outstanding
	// stopping marks the shutdown drain: the federation is complete and
	// the loop only persists to deliver stop frames to sessions that were
	// disconnected when it finished.
	stopping  bool
	stopFrame []byte
	start     time.Time

	joins     []WireJoin
	joined    int
	assembled bool

	// Sync-barrier state: the open round's cohort and collected updates.
	// In tree mode awaiting is keyed by aggregator index and aggUpdates
	// collects the pre-reduced contributions; updates still carries any
	// passthrough per-client payloads.
	awaiting   map[int]bool
	updates    map[int]*Update
	aggUpdates map[int]*AggUpdate
	// Evaluation state: outstanding requests, per-client accuracies, and
	// the sampled id set when cfg.EvalSample is in effect.
	evalWait map[int]bool
	evalPer  []float64
	evalIDs  []int
	// holdback queues async/semisync updates that arrive mid-evaluation, so
	// an evaluation observes one consistent committed model.
	holdback []*Update

	fatal error
	done  bool
}

// Serve accepts cfg.Clients joins on the listener (cfg.Aggregators tree
// joins in tree mode), then drives the configured schedule to completion
// and returns the metrics history. The listener is closed on return.
// Cancelling ctx tears the federation down and returns ctx.Err().
func (n *ServerNode) Serve(ctx context.Context, ln transport.Listener) ([]RoundMetrics, error) {
	defer ln.Close()
	if n.cfg.Clients <= 0 {
		return nil, fmt.Errorf("fl: server node needs a positive client count")
	}
	if n.cfg.Aggregators > 0 {
		if n.cfg.Aggregators > n.cfg.Clients {
			return nil, fmt.Errorf("fl: %d aggregators cannot front %d clients (need aggregators <= clients)",
				n.cfg.Aggregators, n.cfg.Clients)
		}
		if n.cfg.Sched != SchedSync {
			return nil, fmt.Errorf("fl: tree topology requires the sync scheduler")
		}
		if n.cfg.Checkpoint != nil || n.cfg.Resume != nil {
			return nil, fmt.Errorf("fl: tree topology does not support checkpoint/resume")
		}
	}
	r := newServerRun(n)
	defer r.pt.shutdown()
	if n.cfg.Resume != nil {
		if err := r.restore(n.cfg.Resume); err != nil {
			return nil, err
		}
	}
	go r.pt.acceptLoop(ln)
	return r.loop(ctx)
}

func newServerRun(n *ServerNode) *serverRun {
	cfg := n.cfg
	k := cfg.Clients
	r := &serverRun{
		n:     n,
		cfg:   cfg,
		algo:  n.algo,
		k:     k,
		wc:    newWireCodec(cfg.WireSpec(), lossyUploads(n.algo)),
		joins: make([]WireJoin, k),
	}
	sessionCount := k
	if cfg.Aggregators > 0 {
		r.tree = true
		r.aggs = cfg.Aggregators
		r.bounds = TreeSplit(k, r.aggs)
		r.clientChurned = make([]bool, k)
		sessionCount = r.aggs
	}
	validJoin := func(m *wireMsg) bool {
		if r.tree {
			return m.kind == msgTreeJoin && len(m.ints) >= 2
		}
		return m.kind == msgJoin && len(m.ints) == joinIntCount
	}
	r.pt = newPeerTable(sessionCount, 0, cfg.WireSpec(), lossyUploads(n.algo), cfg.Heartbeat, cfg.DeadAfter, cfg.ReconnectWindow,
		cfg.Seed, n.Ledger, &n.Stats, validJoin)
	r.sessions = r.pt.sessions
	r.rng, r.rngSrc = xrand.NewRand(cfg.Seed)
	// Sampled evaluation draws from its own serializable stream, consumed
	// only when cfg.EvalSample is in effect — full-sweep runs never touch
	// it, so their cohort schedule is byte-identical to previous releases.
	r.evalRng, r.evalSrc = xrand.NewRand(cfg.Seed ^ evalSeedMix)
	cohortSize := int(math.Ceil(float64(k) * cfg.SampleRate))
	if cohortSize < 1 {
		cohortSize = 1
	}
	if cohortSize > k {
		cohortSize = k
	}
	r.cohortSize = cohortSize
	r.commitEvery = cohortSize
	if cfg.Sched == SchedSemiSync {
		q := cfg.Quorum
		if q <= 0 {
			q = (cohortSize + 1) / 2
		}
		if q > cohortSize {
			q = cohortSize
		}
		r.commitEvery = q
	}
	return r
}

// send forwards to the peer table (kept as a method for the call sites'
// readability; booking and teardown live there).
func (r *serverRun) send(s *peerSession, frame []byte) bool { return r.pt.send(s, frame) }

// loop is the event loop: every state transition happens here.
func (r *serverRun) loop(ctx context.Context) ([]RoundMetrics, error) {
	interval := r.cfg.Heartbeat
	if r.cfg.DeadAfter < interval {
		interval = r.cfg.DeadAfter
	}
	if r.cfg.ReconnectWindow < interval {
		interval = r.cfg.ReconnectWindow
	}
	if interval /= 2; interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	r.start = time.Now()
	r.pt.lastBeat = r.start
	if r.assembled {
		r.advance()
	}
	for !r.done && r.fatal == nil {
		select {
		case ev := <-r.pt.events:
			r.handleInbound(ev)
		case ac := <-r.pt.conns:
			r.handleConn(ac)
		case <-ticker.C:
			r.handleTick()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if r.assembled && r.fatal == nil && !r.done {
			r.advance()
		}
	}
	if r.fatal != nil {
		return nil, r.fatal
	}
	// Graceful shutdown: every connected, unchurned peer gets a stop. A
	// session that is disconnected right now keeps the same reconnect
	// window it gets mid-run — its peer is re-dialing and would
	// otherwise spin against a closed listener, never learning the run is
	// over. The drain below persists until every such session is adopted
	// (adopt delivers the stop) or its window degrades it to churn; when
	// everyone was connected at the finish, it does not run at all.
	r.stopping = true
	r.stopFrame = encodeMsg(&wireMsg{kind: msgStop}, r.wc)
	for _, s := range r.sessions {
		if s.conn != nil && !s.churned {
			// A send success proves nothing about delivery; the peer's
			// msgStopAck marks the session stopped.
			r.send(s, r.stopFrame)
		}
	}
	for r.pt.pendingStops() && r.fatal == nil {
		select {
		case ev := <-r.pt.events:
			r.handleInbound(ev)
		case ac := <-r.pt.conns:
			r.handleConn(ac)
		case <-ticker.C:
			r.handleTick()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.fatal != nil {
		return nil, r.fatal
	}
	return r.n.History, nil
}

// peerNoun names the downstream peer kind in operator-facing errors.
func (r *serverRun) peerNoun() string {
	if r.tree {
		return "aggregator"
	}
	return "client"
}

// handleConn admits one accepted connection: a join during assembly, a
// token or late join after it.
func (r *serverRun) handleConn(ac acceptedConn) {
	if ac.err != nil {
		if !r.assembled {
			r.fatal = fmt.Errorf("fl: server listener closed with %d of %d %ss joined: %w",
				r.joined, len(r.sessions), r.peerNoun(), ac.err)
		}
		// After assembly a dead listener only forecloses reconnects; the
		// reconnect window degrades the affected sessions to churn.
		return
	}
	r.pt.forgetEmbryo(ac.conn)
	if ac.token != 0 {
		sess := r.pt.findToken(ac.token)
		if sess == nil {
			r.pt.refuse(ac.conn, fmt.Sprintf("unknown session token %#x", ac.token))
			return
		}
		if sess.churned {
			r.pt.refuse(ac.conn, fmt.Sprintf("%s %d session expired (reconnect window elapsed)", r.peerNoun(), sess.id))
			return
		}
		if sess.conn != nil {
			// The old connection is a zombie the dead-interval check has not
			// caught yet; the live re-dial wins.
			r.pt.markDisconnected(sess)
		}
		r.adopt(sess, ac.conn, 0)
		return
	}
	if r.tree {
		r.handleTreeJoin(ac)
		return
	}
	m := ac.join
	id := int(m.ints[joinID])
	if id < 0 || id >= r.k {
		r.pt.refuse(ac.conn, fmt.Sprintf("client id %d out of range [0, %d)", id, r.k))
		return
	}
	if m.name != r.algo.Name() {
		r.pt.refuse(ac.conn, fmt.Sprintf("client runs %q, server runs %q", m.name, r.algo.Name()))
		return
	}
	sess := r.sessions[id]
	if r.assembled {
		if sess.churned {
			r.pt.refuse(ac.conn, fmt.Sprintf("client %d session expired (reconnect window elapsed)", id))
			return
		}
		if sess.conn != nil {
			// The old connection is a zombie whose death event has not been
			// processed yet (the re-join can race it through the accept
			// path); the live re-dial wins, as on the token path.
			r.pt.markDisconnected(sess)
		}
		// A token-less rejoin: a restarted client process that lost its
		// token file, or one whose join-phase connection died before the
		// welcome. Adopt it — the resume message re-teaches the token.
		r.adopt(sess, ac.conn, ac.wire)
		return
	}
	if sess.conn != nil {
		r.pt.markDisconnected(sess)
	}
	r.joins[id] = WireJoin{
		ID:            id,
		TrainSize:     int(m.ints[joinTrainSize]),
		FeatDim:       int(m.ints[joinFeatDim]),
		NumClasses:    int(m.ints[joinNumClasses]),
		NumParams:     int(m.ints[joinNumParams]),
		NumClassifier: int(m.ints[joinNumClassifier]),
		Init:          m.vecs,
	}
	r.pt.attach(sess, ac.conn, ac.wire)
	if !sess.joined {
		sess.joined = true
		r.joined++
	}
	if r.joined == len(r.sessions) {
		r.finishAssembly()
	}
}

// handleTreeJoin admits one aggregator's join: the whole child range's
// declarations arrive in one frame, validated against the server's own
// TreeSplit so both sides agree on who fronts whom.
func (r *serverRun) handleTreeJoin(ac acceptedConn) {
	agg, lo, hi, joins, err := decodeTreeJoin(ac.join)
	if err != nil {
		r.pt.refuse(ac.conn, fmt.Sprintf("malformed tree join: %s", err))
		return
	}
	if agg < 0 || agg >= r.aggs {
		r.pt.refuse(ac.conn, fmt.Sprintf("aggregator index %d out of range [0, %d)", agg, r.aggs))
		return
	}
	if lo != r.bounds[agg] || hi != r.bounds[agg+1] {
		r.pt.refuse(ac.conn, fmt.Sprintf("aggregator %d claims range [%d, %d), server assigns [%d, %d)",
			agg, lo, hi, r.bounds[agg], r.bounds[agg+1]))
		return
	}
	if ac.join.name != r.algo.Name() {
		r.pt.refuse(ac.conn, fmt.Sprintf("aggregator runs %q, server runs %q", ac.join.name, r.algo.Name()))
		return
	}
	sess := r.sessions[agg]
	if r.assembled {
		if sess.churned {
			r.pt.refuse(ac.conn, fmt.Sprintf("aggregator %d session expired (reconnect window elapsed)", agg))
			return
		}
		if sess.conn != nil {
			r.pt.markDisconnected(sess)
		}
		r.adopt(sess, ac.conn, ac.wire)
		return
	}
	if sess.conn != nil {
		r.pt.markDisconnected(sess)
	}
	copy(r.joins[lo:hi], joins)
	r.pt.attach(sess, ac.conn, ac.wire)
	if !sess.joined {
		sess.joined = true
		r.joined++
	}
	if r.joined == len(r.sessions) {
		r.finishAssembly()
	}
}

// finishAssembly builds the algorithm's server state from the full fleet's
// joins, issues session tokens and welcomes everyone. The trailing
// advance() in the event loop opens round 1.
func (r *serverRun) finishAssembly() {
	if err := r.algo.WireSetup(r.joins, r.cfg.Shards); err != nil {
		r.fatal = fmt.Errorf("fl: %s wire setup: %w", r.algo.Name(), err)
		return
	}
	r.pt.issueTokens()
	r.assembled = true
	for _, s := range r.sessions {
		welcome := &wireMsg{kind: msgWelcome, name: r.algo.Name(), ints: r.welcomeInts(s)}
		if !r.send(s, encodeMsg(welcome, r.wc)) {
			// The peer died between joining and the welcome; the reconnect
			// window (or churn) picks it up.
			continue
		}
	}
}

// welcomeInts builds the welcome/resume layout for one session. An
// aggregator receives the same layout a client would — the fleet size,
// round horizon and cadence it relays downstream, plus its own token and
// the root's liveness parameters.
func (r *serverRun) welcomeInts(s *peerSession) []int64 {
	return []int64{
		int64(r.k), int64(r.cfg.Rounds), int64(r.cfg.BatchSize), int64(r.cfg.EvalEvery),
		int64(s.token), r.cfg.Heartbeat.Milliseconds(), r.cfg.DeadAfter.Milliseconds(),
	}
}

// adopt attaches a connection to a disconnected session and replays what
// the peer is owed: the resume message (it may be a restarted process
// that never saw its welcome), then any outstanding dispatch or
// evaluation request.
func (r *serverRun) adopt(sess *peerSession, conn transport.Conn, joinWire int64) {
	sess.downAt = time.Time{}
	r.n.Stats.Reconnects++
	r.pt.attach(sess, conn, joinWire)
	resume := &wireMsg{kind: msgResume, a: uint64(r.version), name: r.algo.Name(), ints: r.welcomeInts(sess)}
	if !r.send(sess, encodeMsg(resume, r.wc)) {
		return
	}
	if sess.busy && sess.pendingDispatch != nil {
		r.n.Stats.Resends++
		if !r.send(sess, sess.pendingDispatch) {
			return
		}
	}
	if r.evalWait != nil && r.evalWait[sess.id] {
		r.n.Stats.Resends++
		frame := sess.pendingEval
		if frame == nil {
			frame = encodeMsg(&wireMsg{kind: msgEvalReq, a: uint64(r.version)}, r.wc)
		}
		if !r.send(sess, frame) {
			return
		}
	}
	if r.stopping {
		// The federation finished while this peer was reconnecting; its
		// re-dial gets the goodbye it re-dialed for (and owes the ack that
		// completes the session).
		r.send(sess, r.stopFrame)
	}
}

// churn permanently removes a session from the federation: cohorts skip
// it, barriers stop waiting for it, its evaluation slot stays NaN. In tree
// mode the session is an aggregator, and the whole subtree it fronts
// churns with it — the clients behind a dead aggregator are unreachable.
func (r *serverRun) churn(s *peerSession) {
	if !r.pt.churnSession(s) {
		return
	}
	if r.tree {
		for id := r.bounds[s.id]; id < r.bounds[s.id+1]; id++ {
			r.clientChurned[id] = true
		}
	}
	if r.awaiting != nil && r.awaiting[s.id] {
		delete(r.awaiting, s.id)
		if len(r.awaiting) == 0 {
			r.completeRound()
		}
	}
	if r.evalWait != nil && r.evalWait[s.id] {
		delete(r.evalWait, s.id)
		if len(r.evalWait) == 0 {
			r.completeEval()
		}
	}
}

func (r *serverRun) aliveCount() int {
	alive := 0
	for _, s := range r.sessions {
		if !s.churned {
			alive++
		}
	}
	return alive
}

// outstanding counts dispatched-but-unanswered sessions.
func (r *serverRun) outstanding() int {
	busy := 0
	for _, s := range r.sessions {
		if s.busy && !s.churned {
			busy++
		}
	}
	return busy
}

// handleInbound processes one reader delivery.
func (r *serverRun) handleInbound(ev inbound) {
	sess := r.sessions[ev.id]
	if ev.err == nil {
		// Every frame that crossed the wire is booked — heartbeat echoes
		// and frames racing a disconnect on an abandoned connection
		// included: the ledger prices traffic, not semantics.
		r.n.Ledger.AddUp(ev.id, ev.wire)
	}
	if ev.gen != sess.gen {
		// A message from a connection this session already abandoned.
		return
	}
	if ev.err != nil {
		if sess.stopped {
			// The peer closed after acknowledging its stop: an orderly
			// goodbye, not a disconnect to wait out.
			if sess.conn != nil {
				sess.conn.Close()
				sess.conn = nil
				sess.gen++
			}
			return
		}
		r.pt.markDisconnected(sess)
		return
	}
	sess.lastSeen = time.Now()
	m := ev.msg
	switch m.kind {
	case msgHeartbeat:
		// The arrival already refreshed lastSeen; nothing else to do.
	case msgUpdate:
		r.handleUpdate(sess, m)
	case msgAggUpdate:
		r.handleAggUpdate(sess, m)
	case msgTreeUpdate:
		r.handleTreeUpdate(sess, m)
	case msgEvalRes:
		r.handleEvalRes(sess, m)
	case msgErr:
		r.fatal = fmt.Errorf("fl: %s %d failed: %s", r.peerNoun(), ev.id, m.name)
	case msgStopAck:
		// The goodbye landed; the session is complete and its EOF (the
		// peer exits after acking) is orderly.
		sess.stopped = true
	default:
		// Duplicate joins, replayed frames after a chaos duplication, and
		// unknown kinds are tolerated noise, not protocol violations: the
		// reconnect machinery makes duplicates a normal occurrence.
		r.n.Stats.Ignored++
	}
}

// handleUpdate folds one upload into the scheduler, deduplicating replays:
// only the answer to the session's outstanding dispatch counts.
func (r *serverRun) handleUpdate(sess *peerSession, m *wireMsg) {
	if r.tree || !sess.busy || sess.dispVersion != m.a {
		r.n.Stats.Ignored++
		return
	}
	sess.busy = false
	sess.pendingDispatch = nil
	u := &Update{
		Client:  sess.id,
		Version: int(m.a),
		Scale:   bitsF64(m.b),
		Vecs:    m.vecs,
		Counts:  m.counts,
	}
	if r.evalWait != nil && r.cfg.Sched != SchedSync {
		r.holdback = append(r.holdback, u)
		return
	}
	r.processUpdate(u)
}

// handleAggUpdate collects one aggregator's pre-reduced contribution. A
// reduction of a non-reducible algorithm is a protocol violation by a
// trusted peer (the startup guard on the aggregator should have refused
// it), so it is fatal, not noise.
func (r *serverRun) handleAggUpdate(sess *peerSession, m *wireMsg) {
	if !r.tree || !sess.busy || sess.dispVersion != m.a {
		r.n.Stats.Ignored++
		return
	}
	if _, ok := r.algo.(ReducibleWireAlgorithm); !ok {
		r.fatal = fmt.Errorf("fl: aggregator %d pre-reduced %s, which has no sound reduction (run fedagg with -prereduce off)",
			sess.id, r.algo.Name())
		return
	}
	au, err := decodeAggUpdate(m)
	if err != nil {
		r.fatal = fmt.Errorf("fl: aggregator %d sent a malformed aggregate: %w", sess.id, err)
		return
	}
	sess.busy = false
	sess.pendingDispatch = nil
	if r.awaiting == nil || !r.awaiting[sess.id] {
		r.n.Stats.Ignored++
		return
	}
	au.Agg = sess.id
	r.aggUpdates[sess.id] = au
	delete(r.awaiting, sess.id)
	if len(r.awaiting) == 0 {
		r.completeTreeRound()
	}
}

// handleTreeUpdate collects one aggregator's passthrough bundle: its
// children's raw updates, unreduced, for algorithms with no sound
// pre-reduction.
func (r *serverRun) handleTreeUpdate(sess *peerSession, m *wireMsg) {
	if !r.tree || !sess.busy || sess.dispVersion != m.a {
		r.n.Stats.Ignored++
		return
	}
	ups, err := decodeTreeUpdate(m)
	if err != nil {
		r.fatal = fmt.Errorf("fl: aggregator %d sent a malformed update bundle: %w", sess.id, err)
		return
	}
	sess.busy = false
	sess.pendingDispatch = nil
	if r.awaiting == nil || !r.awaiting[sess.id] {
		r.n.Stats.Ignored++
		return
	}
	lo, hi := r.bounds[sess.id], r.bounds[sess.id+1]
	for _, u := range ups {
		if u.Client < lo || u.Client >= hi {
			r.fatal = fmt.Errorf("fl: aggregator %d forwarded an update for client %d outside its range [%d, %d)",
				sess.id, u.Client, lo, hi)
			return
		}
		r.updates[u.Client] = u
	}
	delete(r.awaiting, sess.id)
	if len(r.awaiting) == 0 {
		r.completeTreeRound()
	}
}

// processUpdate routes an accepted update through the configured schedule.
func (r *serverRun) processUpdate(u *Update) {
	if r.cfg.Sched == SchedSync {
		if r.awaiting == nil || !r.awaiting[u.Client] {
			r.n.Stats.Ignored++
			return
		}
		u.Weight = u.Scale
		r.updates[u.Client] = u
		delete(r.awaiting, u.Client)
		if len(r.awaiting) == 0 {
			r.completeSyncRound()
		}
		return
	}
	if r.version >= r.cfg.Rounds {
		// The federation has committed its full horizon; a straggler's
		// late update (often released from the final-eval holdback) must
		// not commit a round beyond Rounds.
		r.n.Stats.Ignored++
		return
	}
	u.Staleness = r.version - u.Version
	if u.Staleness > r.cfg.MaxStaleness {
		r.n.Stats.Drops++
		return
	}
	sched := SchedulerConfig{Decay: r.cfg.Decay}
	u.Weight = u.Scale * sched.StalenessWeight(u.Staleness)
	if err := r.algo.WireApply(u); err != nil {
		r.fatal = fmt.Errorf("fl: %s apply from client %d: %w", r.algo.Name(), u.Client, err)
		return
	}
	r.applied++
	if r.applied >= r.commitEvery {
		r.commit()
	}
}

// completeRound closes the open barrier for whichever topology is running.
func (r *serverRun) completeRound() {
	if r.tree {
		r.completeTreeRound()
	} else {
		r.completeSyncRound()
	}
}

// completeSyncRound aggregates the collected barrier updates in client-id
// order (deterministic) and commits.
func (r *serverRun) completeSyncRound() {
	ids := make([]int, 0, len(r.updates))
	for id := range r.updates {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := r.algo.WireApply(r.updates[id]); err != nil {
			r.fatal = fmt.Errorf("fl: %s apply from client %d: %w", r.algo.Name(), id, err)
			return
		}
	}
	r.awaiting = nil
	r.updates = nil
	r.commit()
}

// completeTreeRound folds the collected subtree contributions in
// aggregator order — pre-reduced aggregates through WireApplyAggregate,
// passthrough bundles client by client. Ranges being contiguous and
// visited ascending, the passthrough apply order is exactly flat fan-in's
// sorted client-id order.
func (r *serverRun) completeTreeRound() {
	for a := 0; a < r.aggs; a++ {
		if au, ok := r.aggUpdates[a]; ok {
			if au.Children == 0 {
				continue
			}
			red, isRed := r.algo.(ReducibleWireAlgorithm)
			if !isRed {
				r.fatal = fmt.Errorf("fl: aggregator %d pre-reduced %s, which has no sound reduction", a, r.algo.Name())
				return
			}
			if err := red.WireApplyAggregate(au); err != nil {
				r.fatal = fmt.Errorf("fl: %s aggregate from aggregator %d: %w", r.algo.Name(), a, err)
				return
			}
			continue
		}
		for id := r.bounds[a]; id < r.bounds[a+1]; id++ {
			if u := r.updates[id]; u != nil {
				if err := r.algo.WireApply(u); err != nil {
					r.fatal = fmt.Errorf("fl: %s apply from client %d: %w", r.algo.Name(), id, err)
					return
				}
			}
		}
	}
	r.awaiting = nil
	r.updates = nil
	r.aggUpdates = nil
	r.commit()
}

// commit completes one round: merge accumulators, advance the version,
// then evaluate or account the round directly.
func (r *serverRun) commit() {
	if err := r.algo.WireCommit(); err != nil {
		r.fatal = fmt.Errorf("fl: %s commit: %w", r.algo.Name(), err)
		return
	}
	r.version++
	r.applied = 0
	r.semiOpen = false
	r.n.Stats.Commits++
	if r.version%r.cfg.EvalEvery == 0 || r.version >= r.cfg.Rounds {
		r.startEval()
	} else {
		r.finishRound(nil)
	}
}

// finishRound closes the committed round's traffic accounting, records
// metrics when an evaluation produced them, and checkpoints. The
// checkpoint lands before the OnRound announcement: a round an observer
// has seen is durably recoverable, even if the process dies on the next
// instruction.
func (r *serverRun) finishRound(m *RoundMetrics) {
	traffic := r.n.Ledger.EndRound(r.version)
	if m != nil {
		m.Round = r.version
		m.LocalEpochs = r.version * r.algo.EpochsPerRound()
		m.UpBytes = traffic.UpBytes
		m.DownBytes = traffic.DownBytes
		m.SimTime = time.Since(r.start).Seconds()
		r.n.History = append(r.n.History, *m)
	}
	r.maybeCheckpoint()
	if m != nil && r.cfg.OnRound != nil {
		r.cfg.OnRound(*m)
	}
}

// startEval asks every unchurned client — or, under cfg.EvalSample, a
// fresh sample of the id space — for its personalized accuracy.
// Disconnected sessions owe theirs on adoption; a session that churns
// mid-evaluation (or is churned or unsampled at the start) keeps its NaN,
// excluded from the mean by the NaN-excluding MeanStd. In tree mode the
// requests fan out through the aggregators, each carrying the id list its
// subtree owes.
func (r *serverRun) startEval() {
	r.evalWait = make(map[int]bool)
	r.evalPer = make([]float64, r.k)
	for i := range r.evalPer {
		r.evalPer[i] = math.NaN()
	}
	r.evalIDs = nil
	if n := r.cfg.EvalSample; n > 0 && n < r.k {
		ids := SamplePrefix(r.evalRng, r.k, n)
		sort.Ints(ids)
		r.evalIDs = ids
	}
	if r.tree {
		r.startTreeEval()
		return
	}
	ask := r.sessions
	if r.evalIDs != nil {
		ask = make([]*peerSession, len(r.evalIDs))
		for i, id := range r.evalIDs {
			ask[i] = r.sessions[id]
		}
	}
	req := encodeMsg(&wireMsg{kind: msgEvalReq, a: uint64(r.version)}, r.wc)
	for _, s := range ask {
		if s.churned {
			continue
		}
		r.evalWait[s.id] = true
		r.send(s, req) // a failed send leaves the request owed on adoption
	}
	if len(r.evalWait) == 0 {
		r.completeEval()
	}
}

// startTreeEval fans the evaluation out per subtree: each live aggregator
// gets the ids it owes in the request's ints, and the frame is cached on
// the session so an adoption replays exactly the same id list.
func (r *serverRun) startTreeEval() {
	want := r.evalIDs
	if want == nil {
		want = make([]int, r.k)
		for i := range want {
			want[i] = i
		}
	}
	perAgg := make([][]int64, r.aggs)
	for _, id := range want {
		if r.clientChurned[id] {
			continue
		}
		a := r.ownerOf(id)
		if r.sessions[a].churned {
			continue
		}
		perAgg[a] = append(perAgg[a], int64(id))
	}
	for a := 0; a < r.aggs; a++ {
		if len(perAgg[a]) == 0 {
			continue
		}
		s := r.sessions[a]
		frame := encodeMsg(&wireMsg{kind: msgEvalReq, a: uint64(r.version), ints: perAgg[a]}, r.wc)
		r.evalWait[a] = true
		s.pendingEval = frame
		r.send(s, frame) // a failed send leaves the request owed on adoption
	}
	if len(r.evalWait) == 0 {
		r.completeEval()
	}
}

func (r *serverRun) handleEvalRes(sess *peerSession, m *wireMsg) {
	if r.evalWait == nil || !r.evalWait[sess.id] {
		r.n.Stats.Ignored++
		return
	}
	if r.tree {
		accs, err := parseAggEvalInts(m.ints)
		if err != nil {
			r.fatal = fmt.Errorf("fl: aggregator %d sent a malformed evaluation reply: %w", sess.id, err)
			return
		}
		lo, hi := r.bounds[sess.id], r.bounds[sess.id+1]
		for id, acc := range accs {
			if id < lo || id >= hi {
				r.fatal = fmt.Errorf("fl: aggregator %d reported accuracy for client %d outside its range [%d, %d)",
					sess.id, id, lo, hi)
				return
			}
			r.evalPer[id] = acc
		}
		sess.pendingEval = nil
	} else {
		r.evalPer[sess.id] = bitsF64(m.b)
	}
	delete(r.evalWait, sess.id)
	if len(r.evalWait) == 0 {
		r.completeEval()
	}
}

// completeEval aggregates the collected accuracies (churned and unsampled
// clients stay NaN — MeanStd excludes them count-wise, summing the finite
// entries in the same index order the old pre-filter did), accounts the
// round, then releases any updates held back during the evaluation.
func (r *serverRun) completeEval() {
	r.evalWait = nil
	mean, std := MeanStd(r.evalPer)
	m := RoundMetrics{MeanAcc: mean, StdAcc: std, PerClient: r.evalPer, EvalIDs: r.evalIDs}
	r.evalPer = nil
	r.evalIDs = nil
	r.finishRound(&m)
	for len(r.holdback) > 0 && r.evalWait == nil && r.fatal == nil {
		u := r.holdback[0]
		r.holdback = r.holdback[1:]
		r.processUpdate(u)
	}
}

// maybeCheckpoint snapshots the server at the commit cadence. The
// accumulator is clean here (applied == 0, between a commit and the next
// dispatch decision), so a snapshot is always at a commit boundary.
func (r *serverRun) maybeCheckpoint() {
	if r.cfg.Checkpoint == nil || r.version%r.cfg.CheckpointEvery != 0 {
		return
	}
	snap, err := r.buildSnapshot()
	if err == nil {
		err = r.cfg.Checkpoint(snap)
	}
	if err != nil {
		r.fatal = fmt.Errorf("fl: checkpoint at round %d: %w", r.version, err)
	}
}

// buildSnapshot captures the server's full state: enough that a process
// killed immediately afterwards can be restarted with cfg.Resume and
// continue the run, honoring the session tokens clients still hold.
func (r *serverRun) buildSnapshot() (*Snapshot, error) {
	ca, ok := r.algo.(CheckpointableAlgorithm)
	if !ok {
		return nil, fmt.Errorf("fl: %s cannot be checkpointed (implement fl.CheckpointableAlgorithm)", r.algo.Name())
	}
	st, err := ca.AlgoSnapshot(nil)
	if err != nil {
		return nil, fmt.Errorf("fl: %s state snapshot: %w", r.algo.Name(), err)
	}
	snap := &Snapshot{
		Kind:      r.cfg.Sched,
		Round:     r.version,
		DType:     r.cfg.DType,
		Rng:       r.rngSrc.State(),
		EvalRng:   r.evalSrc.State(),
		FleetSize: r.k,
		History:   cloneHistory(r.n.History),
		Ledger:    r.n.Ledger.Snapshot(),
		Algo:      st,
		Joins:     cloneJoins(r.joins),
	}
	snap.Sessions = make([]SessionState, r.k)
	for i, s := range r.sessions {
		snap.Sessions[i] = SessionState{ID: s.id, Token: s.token, Churned: s.churned}
	}
	return snap, nil
}

// restore rebuilds the server from a snapshot before any connection is
// accepted: algorithm state via WireSetup + AlgoRestore, the session table
// with its original tokens, and the sampling stream position. Every
// session starts disconnected with the reconnect-window clock running —
// surviving clients re-dial with the tokens they hold.
func (r *serverRun) restore(snap *Snapshot) error {
	if snap.Kind != r.cfg.Sched {
		return fmt.Errorf("fl: cannot resume a %s checkpoint under the %s scheduler", snap.Kind, r.cfg.Sched)
	}
	if snap.Round > r.cfg.Rounds {
		return fmt.Errorf("fl: checkpoint at round %d is past the configured %d rounds", snap.Round, r.cfg.Rounds)
	}
	if len(snap.Sessions) != r.k {
		return fmt.Errorf("fl: checkpoint has %d sessions, server is configured for %d clients", len(snap.Sessions), r.k)
	}
	if len(snap.Joins) != r.k {
		return fmt.Errorf("fl: checkpoint has %d join records, server is configured for %d clients", len(snap.Joins), r.k)
	}
	if snap.DType != r.cfg.DType {
		return fmt.Errorf("fl: checkpoint was taken at dtype %s, server is %s (resume with the same -dtype)",
			snap.DType, r.cfg.DType)
	}
	ca, ok := r.algo.(CheckpointableAlgorithm)
	if !ok {
		return fmt.Errorf("fl: %s cannot restore a checkpoint (implement fl.CheckpointableAlgorithm)", r.algo.Name())
	}
	r.joins = cloneJoins(snap.Joins)
	if err := r.algo.WireSetup(r.joins, r.cfg.Shards); err != nil {
		return fmt.Errorf("fl: %s wire setup: %w", r.algo.Name(), err)
	}
	if snap.Algo != nil {
		if err := ca.AlgoRestore(nil, snap.Algo); err != nil {
			return fmt.Errorf("fl: %s state restore: %w", r.algo.Name(), err)
		}
	}
	r.rngSrc.SetState(snap.Rng)
	r.evalSrc.SetState(snap.EvalRng)
	r.n.History = cloneHistory(snap.History)
	r.n.Ledger.Restore(snap.Ledger)
	now := time.Now()
	for i, s := range r.sessions {
		ss := snap.Sessions[i]
		if ss.ID != i {
			return fmt.Errorf("fl: checkpoint session %d has id %d", i, ss.ID)
		}
		s.token = ss.Token
		s.churned = ss.Churned
		s.joined = true
		s.downAt = now
	}
	r.joined = r.k
	r.version = snap.Round
	r.assembled = true
	return nil
}

// advance makes every scheduling decision that is currently possible. It
// loops so that a round completed without any wire traffic (an all-churned
// cohort) rolls directly into the next instead of waiting for a tick.
func (r *serverRun) advance() {
	for r.fatal == nil && !r.done {
		if r.aliveCount() == 0 {
			r.fatal = fmt.Errorf("fl: round %d: every client has left the federation", r.version+1)
			return
		}
		if r.evalWait != nil {
			return
		}
		if r.version >= r.cfg.Rounds {
			r.done = true
			return
		}
		switch r.cfg.Sched {
		case SchedAsyncBounded:
			r.dispatchIdle()
			return
		case SchedSemiSync:
			if r.semiOpen && r.outstanding() > 0 {
				return
			}
			r.openSemiCohort()
			return
		default: // SchedSync
			if r.awaiting != nil {
				return
			}
			if r.tree {
				r.openTreeRound()
			} else {
				r.openSyncRound()
			}
			if r.awaiting != nil {
				return
			}
			// The whole cohort was churned: the round committed empty;
			// loop to open the next one.
		}
	}
}

// openSyncRound samples the round's cohort from the shared RNG stream —
// churned clients are filtered after the draw, so the surviving schedule
// stays deterministic and matches the inproc sync scheduler — and
// dispatches to every member.
func (r *serverRun) openSyncRound() {
	cohort := SampleCohort(r.rng, r.k, r.cfg.SampleRate, 0)
	r.awaiting = make(map[int]bool, len(cohort))
	r.updates = make(map[int]*Update, len(cohort))
	for _, id := range cohort {
		if r.sessions[id].churned {
			continue
		}
		r.awaiting[id] = true
	}
	if len(r.awaiting) == 0 {
		r.completeSyncRound()
		return
	}
	for _, id := range cohort {
		if r.awaiting[id] {
			r.dispatch(r.sessions[id])
			if r.fatal != nil {
				return
			}
		}
	}
}

// ownerOf maps a global client id to the aggregator fronting it.
func (r *serverRun) ownerOf(id int) int {
	return sort.Search(r.aggs, func(a int) bool { return r.bounds[a+1] > id })
}

// openTreeRound samples the round's cohort from the same RNG stream flat
// mode uses — the schedule is identical at equal seeds — then groups the
// members by subtree and dispatches one batched frame per live aggregator.
func (r *serverRun) openTreeRound() {
	cohort := SampleCohort(r.rng, r.k, r.cfg.SampleRate, 0)
	members := make([][]int, r.aggs)
	for _, id := range cohort {
		if r.clientChurned[id] {
			continue
		}
		members[r.ownerOf(id)] = append(members[r.ownerOf(id)], id)
	}
	r.awaiting = make(map[int]bool, r.aggs)
	r.updates = make(map[int]*Update)
	r.aggUpdates = make(map[int]*AggUpdate, r.aggs)
	for a := 0; a < r.aggs; a++ {
		if len(members[a]) == 0 || r.sessions[a].churned {
			continue
		}
		r.awaiting[a] = true
	}
	if len(r.awaiting) == 0 {
		r.completeTreeRound()
		return
	}
	for a := 0; a < r.aggs; a++ {
		if r.awaiting[a] {
			r.dispatchTree(a, members[a])
			if r.fatal != nil {
				return
			}
		}
	}
}

// dispatchTree builds one subtree's batched broadcast: WireDispatch once
// per member (the same calls flat mode makes, in the same ascending
// order), shipped in a single frame the aggregator fans out.
func (r *serverRun) dispatchTree(a int, members []int) {
	payloads := make([][][]float64, len(members))
	for i, id := range members {
		vecs, err := r.algo.WireDispatch(id)
		if err != nil {
			r.fatal = fmt.Errorf("fl: %s dispatch to client %d: %w", r.algo.Name(), id, err)
			return
		}
		payloads[i] = vecs
	}
	frame := encodeTreeDispatch(uint64(r.version), members, payloads, r.wc)
	s := r.sessions[a]
	s.busy = true
	s.dispVersion = uint64(r.version)
	s.pendingDispatch = frame
	r.send(s, frame)
}

// dispatchIdle keeps the async pipeline full: idle, unchurned sessions are
// dispatched in id order until cohortSize updates are in flight —
// mirroring the engine's bounded concurrency.
func (r *serverRun) dispatchIdle() {
	inFlight := r.outstanding()
	for _, s := range r.sessions {
		if inFlight >= r.cohortSize {
			return
		}
		if s.churned || s.busy {
			continue
		}
		r.dispatch(s)
		if r.fatal != nil {
			return
		}
		inFlight++
	}
}

// openSemiCohort dispatches a fresh semisync cohort. Stragglers from an
// earlier cohort keep their outstanding dispatches — their late updates
// still count toward the quorum, exactly as in the engine.
func (r *serverRun) openSemiCohort() {
	avail := make([]int, 0, r.k)
	for _, s := range r.sessions {
		if !s.churned && !s.busy {
			avail = append(avail, s.id)
		}
	}
	n := r.cohortSize
	if n > len(avail) {
		n = len(avail)
	}
	if n == 0 {
		return
	}
	idx := SamplePrefix(r.rng, len(avail), n)
	ids := make([]int, n)
	for i, p := range idx {
		ids[i] = avail[p]
	}
	sort.Ints(ids)
	for _, id := range ids {
		r.dispatch(r.sessions[id])
		if r.fatal != nil {
			return
		}
	}
	r.semiOpen = true
}

// dispatch sends one broadcast, caching the encoded frame for resend on
// adoption (the payload cannot be regenerated: WireDispatch may consume
// algorithm state). A disconnected session keeps the dispatch owed.
func (r *serverRun) dispatch(s *peerSession) {
	vecs, err := r.algo.WireDispatch(s.id)
	if err != nil {
		r.fatal = fmt.Errorf("fl: %s dispatch to client %d: %w", r.algo.Name(), s.id, err)
		return
	}
	frame := encodeMsg(&wireMsg{kind: msgDispatch, a: uint64(r.version), vecs: vecs}, r.wc)
	s.busy = true
	s.dispVersion = uint64(r.version)
	s.pendingDispatch = frame
	r.send(s, frame)
}

// handleTick runs the failure discipline through the peer table; expired
// reconnect windows degrade to churn (whole subtrees, in tree mode).
func (r *serverRun) handleTick() {
	if !r.assembled {
		return
	}
	r.pt.tick(uint64(r.version), r.churn)
}
