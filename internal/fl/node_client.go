package fl

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/nn"
	"repro/internal/transport"
)

// This file is the client half of the node runtime: a ClientNode that owns
// one client's model, data and optimizer, serves the server's dispatch and
// evaluation requests, and survives connection loss by re-dialing with its
// session token.
//
// The runtime splits across two goroutines per connection so that a long
// local-training step never blocks the protocol: a read loop pumps frames
// (heartbeats keep flowing, so the server sees a slow trainer as alive),
// and a training worker runs WireLocal off the serve loop, delivering its
// result through a channel. Replay tolerance is symmetrical with the
// server's: a duplicate dispatch for the round already being trained is
// ignored, a re-dispatch for a round already answered triggers a resend of
// the cached update frame (the server evidently lost it), and the server
// deduplicates whatever arrives twice.

// errConnLost marks a serve pass that ended because the connection died
// (as opposed to a protocol error or a server refusal). Run reconnects on
// it when a Dialer and a session token are available.
var errConnLost = errors.New("connection lost")

// ClientNode runs one client's half of a federation over a transport.
type ClientNode struct {
	Client *Client
	Algo   WireAlgorithm
	// Dialer, when non-nil, re-establishes the connection after a loss,
	// presenting the session token (transport.DialRetry with RetryOptions
	// .Token is the expected implementation). A nil Dialer reproduces the
	// legacy fail-fast behavior: the first connection loss ends Run.
	Dialer func(ctx context.Context, token uint64) (transport.Conn, error)
	// Token, when nonzero, is a session token from a previous process
	// incarnation: Run skips the join and waits for the server's resume
	// message instead (the dial presented the token in the hello).
	Token uint64
	// OnToken, when non-nil, observes every token grant — fedclient
	// persists it so a restarted process can resume its identity.
	OnToken func(uint64)
}

// trainResult is one finished local round, delivered by the training
// worker.
type trainResult struct {
	version uint64
	u       *Update
	err     error
}

// clientRun is the per-Run state that survives reconnects.
type clientRun struct {
	cn    *ClientNode
	c     *Client
	token uint64
	batch int
	// deadMs is the server-announced dead interval in milliseconds, read
	// by the read loop to bound each Recv (atomic: the serve loop updates
	// it when a welcome arrives).
	deadMs   atomic.Int64
	welcomed bool
	joined   bool

	training     bool
	trainVersion uint64
	trainDone    chan trainResult
	// nextDispatch holds a dispatch that arrived mid-training (the server
	// moved on — async redispatch); pendingEval an evaluation request that
	// must wait for the local round to finish.
	nextDispatch *wireMsg
	pendingEval  *wireMsg
	// lastUpdate caches the message of the last finished round, so a
	// re-dispatched round the server lost the answer to is resent instead
	// of retrained. The message — not its encoding — is cached, because a
	// delta-framed upload is stateful: every send must be re-encoded
	// through the connection's current wireCodec so encoder and decoder
	// advance their delta bases in lockstep (a verbatim byte replay would
	// desync the tags).
	lastUpdate  *wireMsg
	lastVersion uint64
	haveLast    bool
}

// Run joins the federation over conn and serves dispatch and evaluation
// requests until the server sends a stop (nil) or the connection
// irrecoverably dies (error). With a Dialer and a granted session token, a
// connection loss triggers a re-dial that resumes the session instead of
// ending the run. Cancelling ctx closes the connection and returns
// ctx.Err().
func (cn *ClientNode) Run(ctx context.Context, conn transport.Conn) error {
	cr := &clientRun{cn: cn, c: cn.Client, token: cn.Token, batch: 32, trainDone: make(chan trainResult, 1)}
	defer cr.drain()
	for {
		err := cr.serve(ctx, conn)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !errors.Is(err, errConnLost) || cn.Dialer == nil {
			return err
		}
		if cr.token == 0 {
			// The connection died before a token was granted (join or welcome
			// lost). A fresh pre-assembly join is idempotent on the server, so
			// redial and join again rather than giving up on the federation.
			cr.joined = false
		}
		next, derr := cn.Dialer(ctx, cr.token)
		if derr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fl: client %d: reconnect after %v: %w", cr.c.ID, err, derr)
		}
		conn = next
	}
}

// drain reaps an in-flight training worker so Run never leaks a goroutine,
// even when it returns mid-round.
func (cr *clientRun) drain() {
	if cr.training {
		<-cr.trainDone
		cr.training = false
	}
}

// awaitStop distinguishes shutdown from failure after a send failed: the
// server sends stop frames and then tears connections down, so a client
// mid-echo can see its write fail while the stop sits in the read queue.
// Already-received frames are drained (briefly — the connection is dead,
// so the read loop finishes fast) looking for the stop that explains the
// failure; anything else is discarded, which is safe because a live server
// resends whatever a reconnecting client owes.
func (cr *clientRun) awaitStop(conn transport.Conn, frames <-chan frameOrErr) bool {
	for {
		select {
		case fe := <-frames:
			if fe.err != nil {
				return false
			}
			if m, err := decodeMsg(fe.b); err == nil && m.kind == msgStop {
				// Best-effort ack on a connection that just failed a send;
				// if it does not land, the server re-delivers the stop to a
				// re-dial or churns the session at the window.
				conn.Send(encodeMsg(&wireMsg{kind: msgStopAck}, nil))
				return true
			}
		case <-time.After(200 * time.Millisecond):
			return false
		}
	}
}

// frameOrErr is one read-loop delivery.
type frameOrErr struct {
	b   []byte
	err error
}

// serve drives one connection until stop (nil), connection loss
// (errConnLost) or a fatal protocol error.
func (cr *clientRun) serve(ctx context.Context, conn transport.Conn) error {
	defer conn.Close()
	c := cr.c
	// The connection's codec state is rebuilt per serve pass: a reconnect
	// starts with no delta bases, so the first upload re-establishes them
	// densely — matching the server reader's equally fresh decoder.
	wc := newWireCodec(conn.Hello().Spec, lossyUploads(cr.cn.Algo))
	stop := make(chan struct{})
	defer close(stop)

	frames := make(chan frameOrErr, 4)
	go func() {
		for {
			// The dead interval bounds every read once the welcome announced
			// it: a server that goes silent — not merely slow — trips the
			// deadline and the client re-dials.
			if d := cr.deadMs.Load(); d > 0 {
				conn.SetReadDeadline(time.Now().Add(time.Duration(d) * time.Millisecond))
			}
			b, _, err := conn.Recv()
			if err != nil {
				select {
				case frames <- frameOrErr{err: err}:
				case <-stop:
				}
				return
			}
			select {
			case frames <- frameOrErr{b: b}:
			case <-stop:
				return
			}
		}
	}()

	if !cr.joined && cr.token == 0 {
		init, err := cr.cn.Algo.WireInit(c)
		if err != nil {
			return fmt.Errorf("fl: client %d init payload: %w", c.ID, err)
		}
		join := &wireMsg{kind: msgJoin, name: cr.cn.Algo.Name(), vecs: init, ints: make([]int64, joinIntCount)}
		join.ints[joinID] = int64(c.ID)
		join.ints[joinTrainSize] = int64(len(c.Train))
		if c.Model != nil {
			join.ints[joinFeatDim] = int64(c.Model.Cfg.FeatDim)
			join.ints[joinNumClasses] = int64(c.Model.Cfg.NumClasses)
			join.ints[joinNumParams] = int64(nn.NumParams(c.Model.Params()))
			join.ints[joinNumClassifier] = int64(nn.NumParams(c.Model.ClassifierParams()))
		}
		if _, err := conn.Send(encodeMsg(join, wc)); err != nil {
			return fmt.Errorf("fl: client %d join: %w: %v", c.ID, errConnLost, err)
		}
		cr.joined = true
	}

	for {
		select {
		case fe := <-frames:
			if fe.err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fl: client %d: %w: %v", c.ID, errConnLost, fe.err)
			}
			m, err := decodeMsg(fe.b)
			if err != nil {
				return fmt.Errorf("fl: client %d: %w", c.ID, err)
			}
			done, err := cr.handle(conn, wc, m)
			if err != nil && errors.Is(err, errConnLost) && cr.awaitStop(conn, frames) {
				return nil
			}
			if done || err != nil {
				return err
			}
		case res := <-cr.trainDone:
			cr.training = false
			if err := cr.finishTraining(conn, wc, res); err != nil {
				if errors.Is(err, errConnLost) && cr.awaitStop(conn, frames) {
					return nil
				}
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// handle processes one server message. done reports a clean stop.
func (cr *clientRun) handle(conn transport.Conn, wc *wireCodec, m *wireMsg) (done bool, err error) {
	c := cr.c
	switch m.kind {
	case msgWelcome, msgResume:
		if len(m.ints) != welIntCount {
			return false, fmt.Errorf("fl: client %d: malformed welcome", c.ID)
		}
		if m.name != cr.cn.Algo.Name() {
			return false, fmt.Errorf("fl: client %d runs %q, server runs %q", c.ID, cr.cn.Algo.Name(), m.name)
		}
		if b := int(m.ints[welBatch]); b > 0 {
			cr.batch = b
		}
		cr.deadMs.Store(m.ints[welDeadMs])
		if tok := uint64(m.ints[welToken]); tok != 0 && tok != cr.token {
			cr.token = tok
			if cr.cn.OnToken != nil {
				cr.cn.OnToken(tok)
			}
		}
		cr.welcomed = true
		cr.joined = true
	case msgHeartbeat:
		// Echo verbatim: traffic is the liveness signal, and the echo keeps
		// flowing even while the worker trains.
		if _, err := conn.Send(encodeMsg(&wireMsg{kind: msgHeartbeat, a: m.a}, wc)); err != nil {
			return false, fmt.Errorf("fl: client %d heartbeat: %w: %v", c.ID, errConnLost, err)
		}
	case msgDispatch:
		if !cr.welcomed {
			return false, fmt.Errorf("fl: client %d: dispatch before welcome", c.ID)
		}
		switch {
		case cr.training && m.a == cr.trainVersion:
			// A resend of the round being trained (the server adopted a
			// reconnect while the worker was mid-round): already in hand.
		case cr.training:
			cr.nextDispatch = m
		case cr.haveLast && m.a == cr.lastVersion:
			// The server re-dispatched a round already answered: the update
			// was lost in the disconnect. Re-encode the cached message
			// through this connection's codec state and resend.
			if _, err := conn.Send(encodeMsg(cr.lastUpdate, wc)); err != nil {
				return false, fmt.Errorf("fl: client %d upload resend: %w: %v", c.ID, errConnLost, err)
			}
		default:
			cr.startTraining(m)
		}
	case msgEvalReq:
		if cr.training {
			cr.pendingEval = m
			break
		}
		if err := cr.sendEval(conn, wc, m); err != nil {
			return false, err
		}
	case msgStop:
		// Acknowledge the goodbye; the server holds the session open until
		// the ack lands (both transports flush in-flight frames on close,
		// so exiting immediately after the send is safe).
		conn.Send(encodeMsg(&wireMsg{kind: msgStopAck}, wc))
		return true, nil
	case msgErr:
		return false, fmt.Errorf("fl: client %d refused by server: %s", c.ID, m.name)
	default:
		// Unknown kinds and replayed frames are tolerated noise; the
		// reconnect machinery makes duplicates a normal occurrence.
	}
	return false, nil
}

// startTraining hands one dispatch to the worker goroutine.
func (cr *clientRun) startTraining(m *wireMsg) {
	cr.training = true
	cr.trainVersion = m.a
	version, vecs, batch := m.a, m.vecs, cr.batch
	go func() {
		u, err := cr.cn.Algo.WireLocal(cr.c, batch, vecs)
		cr.trainDone <- trainResult{version: version, u: u, err: err}
	}()
}

// finishTraining uploads a finished round, caching the encoded frame for
// replay, then services whatever queued up behind the training.
func (cr *clientRun) finishTraining(conn transport.Conn, wc *wireCodec, res trainResult) error {
	c := cr.c
	if res.err != nil {
		conn.Send(encodeMsg(&wireMsg{kind: msgErr, name: res.err.Error()}, wc))
		return fmt.Errorf("fl: client %d local round: %w", c.ID, res.err)
	}
	up := &wireMsg{kind: msgUpdate, a: res.version, b: f64bits(res.u.Scale), vecs: res.u.Vecs, counts: res.u.Counts}
	cr.lastUpdate, cr.lastVersion, cr.haveLast = up, res.version, true
	if _, err := conn.Send(encodeMsg(up, wc)); err != nil {
		return fmt.Errorf("fl: client %d upload: %w: %v", c.ID, errConnLost, err)
	}
	if nd := cr.nextDispatch; nd != nil {
		cr.nextDispatch = nil
		cr.startTraining(nd)
		return nil
	}
	if pe := cr.pendingEval; pe != nil {
		cr.pendingEval = nil
		return cr.sendEval(conn, wc, pe)
	}
	return nil
}

func (cr *clientRun) sendEval(conn transport.Conn, wc *wireCodec, m *wireMsg) error {
	res := &wireMsg{kind: msgEvalRes, a: m.a, b: f64bits(cr.c.EvalAccuracy())}
	if _, err := conn.Send(encodeMsg(res, wc)); err != nil {
		return fmt.Errorf("fl: client %d evaluation: %w: %v", cr.c.ID, errConnLost, err)
	}
	return nil
}
