package fl

import (
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/loss"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Cross-client cohort grouping (DESIGN.md §12): clients of a dispatched
// cohort that share a model configuration — architecture, geometry and
// dtype, i.e. the comparable models.Config — train in lockstep, with each
// layer's per-client GEMMs lowered into one batched launch. Grouping is a
// pure dispatch optimization: a grouped run is byte-identical to an
// ungrouped one at every GOMAXPROCS (the grouping-invariance contract),
// because the batched GEMM entry points preserve each product's standalone
// shard plan and every client's private RNG stream is consumed in exactly
// the order its solo epoch would consume it.

// cohortGrouping gates cross-client batched execution globally. On by
// default; tests toggle it to prove grouping invariance.
var cohortGrouping atomic.Bool

func init() { cohortGrouping.Store(true) }

// SetCohortGrouping enables or disables cross-client batched cohort
// execution and returns the previous setting. Toggle only between runs.
func SetCohortGrouping(on bool) bool { return cohortGrouping.Swap(on) }

// CohortGrouping reports whether cohort grouping is enabled.
func CohortGrouping() bool { return cohortGrouping.Load() }

// GroupLocalAlgorithm is implemented by algorithms whose local updates for
// same-configuration clients can run in lockstep as one batched task.
type GroupLocalAlgorithm interface {
	AsyncAlgorithm
	// GroupLocal reports whether grouped local execution is valid for the
	// algorithm's current settings (FedProx's proximal term, for example,
	// opts out and trains per client).
	GroupLocal() bool
	// AsyncLocalGroup runs the local updates of a same-configuration cohort
	// slice in lockstep and returns one non-nil update per client, in
	// order. It has AsyncLocal's concurrency contract.
	AsyncLocalGroup(sim *Simulation, clients []int) ([]*Update, error)
}

// GroupCohort partitions a cohort's client ids by model configuration, in
// first-seen order; ids within a group keep their cohort order. Clients
// without a model each form their own singleton group.
func GroupCohort(sim *Simulation, ids []int) [][]int {
	groups := make([][]int, 0, 4)
	index := make(map[models.Config]int, 4)
	for _, id := range ids {
		c := sim.Client(id)
		if c.Model == nil {
			groups = append(groups, []int{id})
			continue
		}
		gi, ok := index[c.Model.Cfg]
		if !ok {
			gi = len(groups)
			index[c.Model.Cfg] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], id)
	}
	return groups
}

// TrainEpochGroupCE trains one plain cross-entropy epoch for a group of
// same-configuration clients in lockstep, returning each client's average
// loss. Per client it is byte-identical to TrainEpochCE: every client's
// batch schedule is drawn from its own RNG at epoch start, its batches are
// visited in the same order, and its optimizer steps after each batch.
// Clients with fewer batches simply drop out of later lockstep steps.
func TrainEpochGroupCE(clients []*Client, batchSize int) []float64 {
	losses := make([]float64, len(clients))
	if len(clients) == 0 {
		return losses
	}
	if len(clients) == 1 {
		losses[0] = clients[0].TrainEpochCE(batchSize)
		return losses
	}
	g := len(clients)
	batches := make([][][]data.Example, g)
	params := make([][]*nn.Param, g)
	counts := make([]int, g)
	steps := 0
	for i, c := range clients {
		batches[i] = data.Batches(c.Train, batchSize, c.Rng)
		params[i] = c.Model.Params()
		if len(batches[i]) > steps {
			steps = len(batches[i])
		}
	}
	active := make([]int, 0, g)
	exts := make([]*nn.Sequential, 0, g)
	clfs := make([]*nn.Dense, 0, g)
	xs := make([]*tensor.Tensor, 0, g)
	ys := make([][]int, 0, g)
	dls := make([]*tensor.Tensor, 0, g)
	for step := 0; step < steps; step++ {
		active, exts, clfs, xs, ys = active[:0], exts[:0], clfs[:0], xs[:0], ys[:0]
		for i, c := range clients {
			if step >= len(batches[i]) {
				continue
			}
			x, y := c.AugmentedBatch(batches[i][step])
			active = append(active, i)
			exts = append(exts, c.Model.Extractor)
			clfs = append(clfs, c.Model.Classifier)
			xs = append(xs, c.Model.CastInput(x))
			ys = append(ys, y)
		}
		feats := nn.SequentialForwardBatch(exts, xs, true)
		logits := nn.DenseForwardBatch(clfs, feats, true)
		dls = dls[:0]
		for j, i := range active {
			l, dl := loss.CrossEntropy(logits[j], ys[j])
			losses[i] += l
			counts[i]++
			dls = append(dls, dl)
		}
		dfeats := nn.DenseBackwardBatch(clfs, dls)
		nn.SequentialBackwardBatch(exts, dfeats)
		for _, i := range active {
			clients[i].Optimizer.Step(params[i])
			nn.ZeroGrads(params[i])
		}
	}
	for i := range losses {
		if counts[i] > 0 {
			losses[i] /= float64(counts[i])
		}
	}
	return losses
}
