package fl

import (
	"bytes"
	"testing"

	"repro/internal/comm"
)

// specVec builds a deterministic test vector with a wide magnitude spread
// so top-k selection is unambiguous.
func specVec(n int, seed float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = seed * float64((i*7919)%101-50) / 37.0
	}
	return v
}

// TestWireSparseUploadRoundTrip checks that a top-k spec'd connection
// frames msgUpdate vectors exactly as comm.RoundTripSpec models: the
// decoded vector is the sparsified reconstruction, bit for bit.
func TestWireSparseUploadRoundTrip(t *testing.T) {
	spec := comm.NewSpec(comm.F32, 0.25, false)
	enc := newWireCodec(spec, true)
	dec := newWireCodec(spec, true)
	v := specVec(128, 1.5)
	m := &wireMsg{kind: msgUpdate, a: 3, vecs: [][]float64{append([]float64(nil), v...)}}
	got, err := decodeMsgWc(encodeMsg(m, enc), dec)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), v...)
	comm.RoundTripSpec(spec, want, nil)
	zeros := 0
	for i := range want {
		if got.vecs[0][i] != want[i] {
			t.Fatalf("value[%d] = %v, want sparsified %v", i, got.vecs[0][i], want[i])
		}
		if want[i] == 0 {
			zeros++
		}
	}
	if zeros < len(want)/2 {
		t.Fatalf("top-k 25%% kept too much: only %d/%d zeros", zeros, len(want))
	}
}

// TestWireSparseOnlyUploadsSparsify pins the framing policy: on a sparse
// spec'd connection, dispatch frames and small update vectors stay dense
// (value codec only) — byte-identical to the plain dense encoding.
func TestWireSparseOnlyUploadsSparsify(t *testing.T) {
	spec := comm.NewSpec(comm.F32, 0.25, true)
	wc := newWireCodec(spec, true)
	dense := plainWire(comm.F32)

	disp := &wireMsg{kind: msgDispatch, vecs: [][]float64{specVec(128, 0.7)}}
	if !bytes.Equal(encodeMsg(disp, wc), encodeMsg(disp, dense)) {
		t.Fatal("dispatch frame sparsified — only msgUpdate may")
	}
	small := &wireMsg{kind: msgUpdate, vecs: [][]float64{specVec(8, 0.7)}}
	if !bytes.Equal(encodeMsg(small, wc), encodeMsg(small, dense)) {
		t.Fatal("sub-MinSparse update vector sparsified")
	}
	// A non-lossy algorithm's wireCodec drops sparsity entirely, keeping
	// only the value codec, so prototype uploads stay exact.
	strict := newWireCodec(spec, false)
	up := &wireMsg{kind: msgUpdate, vecs: [][]float64{specVec(128, 0.7)}}
	if !bytes.Equal(encodeMsg(up, strict), encodeMsg(up, dense)) {
		t.Fatal("non-lossy algorithm's upload was sparsified")
	}
}

// TestWireDeltaLockstepAndResync drives three rounds of delta-framed
// uploads through one connection's encoder/decoder pair, checking each
// decode against the comm.RoundTripSpec model, then simulates a reconnect
// (fresh wireCodecs on both ends, the protocol's dense fallback) and
// checks the new connection re-establishes a basis cleanly.
func TestWireDeltaLockstepAndResync(t *testing.T) {
	spec := comm.NewSpec(comm.I8, 0, true)
	enc := newWireCodec(spec, true)
	dec := newWireCodec(spec, true)
	ref := &comm.DeltaRef{}

	var deltaFrame []byte
	for round := 1; round <= 3; round++ {
		v := specVec(96, float64(round))
		m := &wireMsg{kind: msgUpdate, a: uint64(round), vecs: [][]float64{append([]float64(nil), v...)}}
		frame := encodeMsg(m, enc)
		if round == 2 {
			deltaFrame = append([]byte(nil), frame...)
		}
		got, err := decodeMsgWc(frame, dec)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := append([]float64(nil), v...)
		comm.RoundTripSpec(spec, want, ref)
		for i := range want {
			if got.vecs[0][i] != want[i] {
				t.Fatalf("round %d value[%d] = %v, want %v", round, i, got.vecs[0][i], want[i])
			}
		}
	}

	// A delta frame landing on a connection without its basis (e.g. a
	// stale replay onto a fresh connection) must fail the decode, not
	// silently fold into the wrong basis.
	if _, err := decodeMsgWc(deltaFrame, newWireCodec(spec, true)); err == nil {
		t.Fatal("delta frame decoded without its basis")
	}
	// And a nil wireCodec (pre-spec decoder) must reject it too.
	if _, err := decodeMsg(deltaFrame); err == nil {
		t.Fatal("delta frame decoded by the plain dense decoder")
	}

	// Reconnect: both ends build fresh codec state; the first frame of the
	// new connection establishes a new basis densely.
	enc2, dec2 := newWireCodec(spec, true), newWireCodec(spec, true)
	ref2 := &comm.DeltaRef{}
	for round := 4; round <= 5; round++ {
		v := specVec(96, float64(round))
		m := &wireMsg{kind: msgUpdate, a: uint64(round), vecs: [][]float64{append([]float64(nil), v...)}}
		got, err := decodeMsgWc(encodeMsg(m, enc2), dec2)
		if err != nil {
			t.Fatalf("post-reconnect round %d: %v", round, err)
		}
		want := append([]float64(nil), v...)
		comm.RoundTripSpec(spec, want, ref2)
		for i := range want {
			if got.vecs[0][i] != want[i] {
				t.Fatalf("post-reconnect round %d value[%d] = %v, want %v", round, i, got.vecs[0][i], want[i])
			}
		}
	}
}
