// Package fl is the federated-learning simulation kernel: clients with
// personal models, data and optimizers; a round loop with client sampling,
// parallel local updates and per-round evaluation; and the metrics history
// (average personalized test accuracy vs cumulative local epochs) that the
// paper's learning-curve figures plot.
package fl

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/loss"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Client is one federated participant: a personal model, a personalized
// data split, an augmenter producing contrastive views, and a private,
// deterministically seeded RNG so parallel execution stays reproducible.
type Client struct {
	ID        int
	Model     *models.SplitModel
	Train     []data.Example
	Test      []data.Example
	Aug       *data.Augmenter
	Rng       *rand.Rand
	Optimizer opt.Optimizer
	// Src, when non-nil, is the serializable source behind Rng (build the
	// pair with xrand.NewRand). Checkpointing requires it: a client's
	// training stream can only be frozen and resumed through Src.
	Src *xrand.Source
}

// InputGeometry returns the client's input tensor dimensions.
func (c *Client) InputGeometry() (ch, h, w int) {
	cfg := c.Model.Cfg
	return cfg.InC, cfg.InH, cfg.InW
}

// DType reports the client model's element type (F64 without a model).
func (c *Client) DType() tensor.DType {
	if c.Model == nil {
		return tensor.F64
	}
	return c.Model.DType()
}

// AugmentedBatch packs a batch into a model-dtype tensor, applying one
// augmentation per example when the client has an augmenter. Augmentation
// itself runs in float64 bookkeeping (it is per-pixel arithmetic on the
// stored examples); the batch narrows once, here, at the model boundary.
func (c *Client) AugmentedBatch(b []data.Example) (x *tensor.Tensor, y []int) {
	ch, h, w := c.InputGeometry()
	if c.Aug == nil {
		return data.BatchTensorOf(c.DType(), b, ch, h, w)
	}
	aug := make([]data.Example, len(b))
	for i, ex := range b {
		aug[i] = data.Example{X: c.Aug.Apply(ex.X, c.Rng), Y: ex.Y}
	}
	return data.BatchTensorOf(c.DType(), aug, ch, h, w)
}

// EvalAccuracy computes test accuracy with the model in evaluation mode,
// batching the test set to bound memory.
func (c *Client) EvalAccuracy() float64 {
	if len(c.Test) == 0 {
		return 0
	}
	ch, h, w := c.InputGeometry()
	const evalBatch = 64
	correct := 0
	for lo := 0; lo < len(c.Test); lo += evalBatch {
		hi := lo + evalBatch
		if hi > len(c.Test) {
			hi = len(c.Test)
		}
		x, y := data.BatchTensorOf(c.DType(), c.Test[lo:hi], ch, h, w)
		_, logits := c.Model.Forward(x, false)
		for i := range y {
			if logits.ArgMaxRow(i) == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(c.Test))
}

// TrainEpochCE trains one epoch with plain cross-entropy (the local-only
// baseline and the post-aggregation update of weight-sharing methods),
// returning the average loss. Inputs pass through the client's augmenter so
// every method trains on the same augmented distribution.
func (c *Client) TrainEpochCE(batchSize int) float64 {
	params := c.Model.Params()
	batches := data.Batches(c.Train, batchSize, c.Rng)
	var total float64
	var count int
	for _, b := range batches {
		x, y := c.AugmentedBatch(b)
		_, logits := c.Model.Forward(x, true)
		l, dlogits := loss.CrossEntropy(logits, y)
		total += l
		count++
		dfeat := c.Model.Classifier.Backward(dlogits)
		c.Model.Extractor.Backward(dfeat)
		c.Optimizer.Step(params)
		nn.ZeroGrads(params)
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Config controls a Simulation run.
type Config struct {
	Rounds     int
	SampleRate float64 // fraction of clients participating per round
	BatchSize  int
	Seed       int64
	// DropProb injects client failures: a sampled client drops out of the
	// round (its update is lost) with this probability.
	DropProb float64
	// EvalEvery evaluates accuracy every n rounds (default 1).
	EvalEvery int
	// EvalSample, when positive, evaluates a fresh cohort of that many
	// clients per evaluation point instead of sweeping the whole fleet —
	// the only affordable option for virtual fleets where N is far larger
	// than the per-round cohort. The sample is drawn from a dedicated RNG
	// stream, so enabling it never perturbs cohort sampling or failure
	// injection. 0 (the default) sweeps every client, byte-identical to
	// previous releases.
	EvalSample int
	// Codec selects the wire codec payloads are accounted (and, through
	// Uplink, quantized) with. The zero value is lossless float64.
	Codec comm.Codec
	// TopK, in (0, 1), sparsifies weight uploads to the ceil(TopK·n)
	// largest-|v| elements per vector, exactly as the wire's TOPK frames
	// would: Uplink zeroes the dropped elements and books the sparse frame
	// bytes. Applies only to algorithms whose uploads tolerate loss
	// (LossyUploads); structural payloads stay dense and exact. 0 keeps
	// uploads dense.
	TopK float64
	// Delta frames weight uploads as residuals against the client's
	// previous upload of the same length, modeling the wire's DELTA frames
	// over one stable connection per client.
	Delta bool
}

// WireSpec is the upload framing spec the config describes — what a node
// federation would negotiate in its transport handshake.
func (c Config) WireSpec() comm.Spec { return comm.NewSpec(c.Codec, c.TopK, c.Delta) }

// RoundMetrics is one evaluation point.
type RoundMetrics struct {
	Round       int
	LocalEpochs int // cumulative local epochs (the x-axis of Figures 4–7)
	MeanAcc     float64
	StdAcc      float64
	PerClient   []float64
	// EvalIDs, when non-nil, names the clients PerClient refers to
	// (sampled evaluation, Config.EvalSample). Nil means PerClient[i] is
	// client i's accuracy — the full-sweep layout.
	EvalIDs   []int
	UpBytes   int64
	DownBytes int64
	// SimTime is the cumulative virtual time (in client-update cost units)
	// at this evaluation point; round throughput comparisons across
	// schedulers divide Round by it.
	SimTime float64
}

// Algorithm is a federated training algorithm. Setup runs once before the
// first round; Round performs one communication round over the given
// participant client IDs.
type Algorithm interface {
	Name() string
	Setup(sim *Simulation) error
	Round(sim *Simulation, round int, participants []int) error
	// EpochsPerRound reports how many local epochs each participant runs
	// per round, used for the cumulative-epoch x-axis (KT-pFL uses 20).
	EpochsPerRound() int
}

// Simulation owns the clients, the traffic ledger and the metrics history.
// Clients live either eagerly in Clients (the historical layout) or behind
// a lazy ClientStore (NewLazySimulation) that materializes them on demand
// and spills evicted state through the snapshot buffer format; access goes
// through Client/NumClients so algorithms work against both.
type Simulation struct {
	Clients []*Client
	Ledger  *comm.Ledger
	Rng     *rand.Rand
	Cfg     Config
	History []RoundMetrics

	// src is the serializable source behind Rng, so checkpoints can freeze
	// the scheduler's sampling stream.
	src *xrand.Source

	// store backs a lazy fleet (nil for eager simulations).
	store *ClientStore
	// Upload framing state (Config.TopK/Delta). upSel resolves each
	// upload's per-vector spec; lossyUp gates it to algorithms whose
	// uploads tolerate loss (set by the engine from the algorithm before
	// the first round); upRefs holds the per-(client, length) delta bases,
	// modeling one stable connection per client.
	upSel   comm.Selector
	lossyUp bool
	upMu    sync.Mutex
	upRefs  map[upSlot]*comm.DeltaRef
	// evalRng/evalSrc drive sampled evaluation (Config.EvalSample). The
	// stream is separate from Rng and consumed only when sampling, so
	// full-sweep runs never touch it.
	evalRng *rand.Rand
	evalSrc *xrand.Source
}

// evalSeedMix decorrelates the sampled-evaluation stream from the
// scheduler stream at the same seed ("eval" in ASCII).
const evalSeedMix = 0x6576616c

// NewSimulation builds a simulation over the given clients.
func NewSimulation(clients []*Client, cfg Config) *Simulation {
	s := newSimulation(cfg)
	s.Clients = clients
	return s
}

// NewLazySimulation builds a simulation over a virtual fleet of n clients
// materialized on demand by build (which must construct client i as a pure
// function of i). At most resident clients stay materialized; beyond that
// the least-recently-used client's mutable state spills to compact
// snapshot buffers and is restored bit-identically on re-dispatch, so any
// finite budget produces the same metrics and trace as budget ∞.
// resident <= 0 means unbounded. When Cfg.EvalSample is unset it defaults
// to the cohort size, keeping evaluation O(cohort) like everything else.
func NewLazySimulation(n int, build func(int) *Client, resident int, cfg Config) *Simulation {
	s := newSimulation(cfg)
	if s.Cfg.EvalSample <= 0 {
		cohort := int(math.Ceil(float64(n) * s.Cfg.SampleRate))
		if cohort < 1 {
			cohort = 1
		}
		s.Cfg.EvalSample = cohort
	}
	s.store = NewClientStore(n, build, resident)
	return s
}

func newSimulation(cfg Config) *Simulation {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	ledger := comm.NewLedger()
	ledger.SetCodec(cfg.Codec)
	rng, src := xrand.NewRand(cfg.Seed)
	evalRng, evalSrc := xrand.NewRand(cfg.Seed ^ evalSeedMix)
	return &Simulation{
		Ledger:  ledger,
		Rng:     rng,
		Cfg:     cfg,
		src:     src,
		evalRng: evalRng,
		evalSrc: evalSrc,
		upSel:   comm.Selector{Spec: cfg.WireSpec()},
	}
}

// upSlot names one upload delta-basis slot: a client and a vector length,
// the simulation counterpart of the wire's per-connection vecSlot.
type upSlot struct {
	client, n int
}

// Lazy reports whether clients are materialized on demand from a store.
func (s *Simulation) Lazy() bool { return s.store != nil }

// NumClients returns the fleet size without materializing anyone.
func (s *Simulation) NumClients() int {
	if s.store != nil {
		return s.store.Len()
	}
	return len(s.Clients)
}

// Client returns client id, materializing (and restoring spilled state
// into) it if the fleet is lazy. The returned client stays resident at
// least until the next eviction safe point.
func (s *Simulation) Client(id int) *Client {
	if s.store != nil {
		return s.store.Get(id)
	}
	return s.Clients[id]
}

// ClientID maps a compact index to the client's public ID without
// materializing it; lazy fleets use the identity id space.
func (s *Simulation) ClientID(i int) int {
	if s.store != nil {
		return i
	}
	return s.Clients[i].ID
}

// setupProbeWidth caps how many clients Setup probes in a lazy fleet.
const setupProbeWidth = 64

// SetupIDs returns the client ids an Algorithm's Setup should inspect for
// fleet-wide invariants (architecture homogeneity, feature dims) and
// initial aggregates. Eager fleets return every id — the historical
// behavior. Lazy fleets return a fixed prefix (min(n, 64)): fleet builders
// construct clients from a small arch rotation, so a prefix witnesses
// every architecture, and a budget-independent probe set keeps the
// determinism contract (Setup must not depend on what happens to be
// resident).
func (s *Simulation) SetupIDs() []int {
	n := s.NumClients()
	if s.store != nil && n > setupProbeWidth {
		n = setupProbeWidth
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Run executes the algorithm for the configured number of rounds under the
// sync (lock-step) scheduler and returns the metrics history. Use
// RunScheduled to pick a different scheduler.
func (s *Simulation) Run(algo Algorithm) ([]RoundMetrics, error) {
	return s.RunScheduled(algo, SchedulerConfig{Kind: SchedSync})
}

// Uplink records a client → server payload on the traffic ledger and passes
// it through the configured wire framing's loss in place — codec
// quantization, top-k sparsification and delta residuals affect aggregation
// exactly as the wire would, and the booked bytes are exactly the frame the
// wire would carry. It returns v for chaining. Safe to call from parallel
// client loops in sync rounds; AsyncLocal implementations must use
// QuantizeUplink plus Update.UpFloats/UpBytes instead, so the engine books
// the bytes at virtual delivery time.
func (s *Simulation) Uplink(client int, v []float64) []float64 {
	spec := s.uplinkSpec(len(v))
	if spec.Plain() {
		// The legacy dense path, byte for byte: element-count pricing at the
		// ledger's codec plus in-place codec quantization.
		s.Ledger.RecordUp(client, len(v))
		comm.RoundTripInPlace(s.Cfg.Codec, v)
		return v
	}
	s.Ledger.AddUp(client, comm.RoundTripSpec(spec, v, s.upRef(spec, client, len(v))))
	return v
}

// Quantize passes v through the configured wire codec in place (no ledger
// recording, no sparsification) and returns it for chaining.
func (s *Simulation) Quantize(v []float64) []float64 {
	comm.RoundTripInPlace(s.Cfg.Codec, v)
	return v
}

// QuantizeUplink applies the upload framing's loss to v in place at
// local-compute time and returns the exact frame bytes the engine must book
// at virtual delivery time (Update.UpBytes). A plain dense upload returns
// 0 bytes: the engine books it through the legacy element-count path
// (Update.UpFloats), keeping dense runs byte-identical to previous
// releases.
func (s *Simulation) QuantizeUplink(client int, v []float64) ([]float64, int64) {
	spec := s.uplinkSpec(len(v))
	if spec.Plain() {
		comm.RoundTripInPlace(s.Cfg.Codec, v)
		return v, 0
	}
	return v, comm.RoundTripSpec(spec, v, s.upRef(spec, client, len(v)))
}

// uplinkSpec resolves one upload vector's framing: plain dense at the
// config codec unless the algorithm's uploads tolerate loss, in which case
// the selector applies the configured sparsification and delta framing
// (subject to its minimum-size floor).
func (s *Simulation) uplinkSpec(n int) comm.Spec {
	if !s.lossyUp {
		return comm.Spec{Value: s.Cfg.Codec}
	}
	return s.upSel.For(msgUpdate, n)
}

// upRef returns the delta basis for one upload slot, creating it on first
// use; nil when the resolved spec is not delta-framed.
func (s *Simulation) upRef(spec comm.Spec, client, n int) *comm.DeltaRef {
	if !spec.Delta {
		return nil
	}
	s.upMu.Lock()
	defer s.upMu.Unlock()
	if s.upRefs == nil {
		s.upRefs = make(map[upSlot]*comm.DeltaRef)
	}
	slot := upSlot{client: client, n: n}
	r := s.upRefs[slot]
	if r == nil {
		r = &comm.DeltaRef{}
		s.upRefs[slot] = r
	}
	return r
}

// setLossyUploads latches whether the algorithm's uploads may be
// sparsified or delta-framed, called by the engine before the first round.
func (s *Simulation) setLossyUploads(algo Algorithm) {
	l, ok := algo.(interface{ LossyUploads() bool })
	s.lossyUp = ok && l.LossyUploads()
}

// sampleParticipants draws ⌈K·rate⌉ distinct clients and applies failure
// injection.
func (s *Simulation) sampleParticipants() []int {
	return SampleCohort(s.Rng, s.NumClients(), s.Cfg.SampleRate, s.Cfg.DropProb)
}

// SampleCohort draws ⌈k·rate⌉ distinct client ids in ascending order and
// applies per-client failure injection, consuming exactly the RNG stream
// the simulation's schedulers consume. It is shared with the node runtime
// so a ServerNode at seed S samples the same cohorts as the in-process
// sync run at seed S. Sampling is a partial Fisher–Yates over the compact
// id space: O(n) time and memory for an n-client cohort, independent of
// the fleet size k — the property that lets million-client fleets sample
// at cohort cost.
func SampleCohort(rng *rand.Rand, k int, rate, dropProb float64) []int {
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	n := int(math.Ceil(float64(k) * rate))
	if n > k {
		n = k
	}
	picked := SamplePrefix(rng, k, n)
	sort.Ints(picked)
	if dropProb <= 0 {
		return picked
	}
	kept := picked[:0]
	for _, id := range picked {
		if rng.Float64() >= dropProb {
			kept = append(kept, id)
		}
	}
	return kept
}

// SamplePrefix draws n distinct integers uniformly from [0,k) in the order
// a full Fisher–Yates shuffle would place them in its first n slots, but
// tracking only the displaced entries in a sparse map — O(n) time and
// memory regardless of k. The returned slice is unsorted; it consumes
// exactly n Intn draws from rng.
func SamplePrefix(rng *rand.Rand, k, n int) []int {
	if n > k {
		n = k
	}
	if n <= 0 {
		return []int{}
	}
	disp := make(map[int]int, n)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(k-i)
		vj, ok := disp[j]
		if !ok {
			vj = j
		}
		vi, ok := disp[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		disp[j] = vi
	}
	return out
}

// Evaluate measures every client's personalized test accuracy in parallel
// (or a sampled subset under Config.EvalSample), with no churn exclusion.
func (s *Simulation) Evaluate() RoundMetrics {
	return s.evaluateWith(nil, 0)
}

// evaluateWith is the scheduler-facing evaluation: clients whose away
// horizon extends past the current virtual time are marked NaN in
// PerClient and excluded from the mean/std, matching the node runtime's
// churn semantics (DESIGN.md §9). A nil away slice means no churn. When
// Config.EvalSample is positive, a fresh cohort of that many clients is
// drawn from the dedicated eval RNG stream instead of sweeping the fleet;
// EvalIDs records the sample.
func (s *Simulation) evaluateWith(away []float64, now float64) RoundMetrics {
	n := s.NumClients()
	if s.Cfg.EvalSample > 0 && s.Cfg.EvalSample < n {
		ids := SamplePrefix(s.evalRng, n, s.Cfg.EvalSample)
		sort.Ints(ids)
		accs := make([]float64, len(ids))
		ParallelClients(len(ids), func(i int) {
			id := ids[i]
			if away != nil && away[id] > now {
				accs[i] = math.NaN()
				return
			}
			accs[i] = s.Client(id).EvalAccuracy()
		})
		mean, std := MeanStd(accs)
		return RoundMetrics{MeanAcc: mean, StdAcc: std, PerClient: accs, EvalIDs: ids}
	}
	accs := make([]float64, n)
	ParallelClients(n, func(i int) {
		if away != nil && away[i] > now {
			accs[i] = math.NaN()
			return
		}
		accs[i] = s.Client(i).EvalAccuracy()
	})
	mean, std := MeanStd(accs)
	return RoundMetrics{MeanAcc: mean, StdAcc: std, PerClient: accs}
}

// MeanStd returns the mean and population standard deviation over the
// non-NaN entries (NaN marks an excluded client — away or churned). All
// entries NaN, or an empty slice, returns (0, 0). On NaN-free input the
// arithmetic is operation-for-operation identical to the historical
// all-entries formula, so clean metric streams stay byte-identical.
func MeanStd(xs []float64) (mean, std float64) {
	n := 0
	for _, v := range xs {
		if math.IsNaN(v) {
			continue
		}
		mean += v
		n++
	}
	if n == 0 {
		return 0, 0
	}
	mean /= float64(n)
	for _, v := range xs {
		if math.IsNaN(v) {
			continue
		}
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(n))
}

// ParallelClients runs f(i) for i in [0,n) with dynamic load balancing on
// the persistent tensor worker pool (no goroutines are spawned per round);
// client-level parallelism mirrors the paper's MPI node-per-client layout.
func ParallelClients(n int, f func(i int)) {
	tensor.Parallel(n, f)
}
