// Package fl is the federated-learning simulation kernel: clients with
// personal models, data and optimizers; a round loop with client sampling,
// parallel local updates and per-round evaluation; and the metrics history
// (average personalized test accuracy vs cumulative local epochs) that the
// paper's learning-curve figures plot.
package fl

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/loss"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Client is one federated participant: a personal model, a personalized
// data split, an augmenter producing contrastive views, and a private,
// deterministically seeded RNG so parallel execution stays reproducible.
type Client struct {
	ID        int
	Model     *models.SplitModel
	Train     []data.Example
	Test      []data.Example
	Aug       *data.Augmenter
	Rng       *rand.Rand
	Optimizer opt.Optimizer
	// Src, when non-nil, is the serializable source behind Rng (build the
	// pair with xrand.NewRand). Checkpointing requires it: a client's
	// training stream can only be frozen and resumed through Src.
	Src *xrand.Source
}

// InputGeometry returns the client's input tensor dimensions.
func (c *Client) InputGeometry() (ch, h, w int) {
	cfg := c.Model.Cfg
	return cfg.InC, cfg.InH, cfg.InW
}

// DType reports the client model's element type (F64 without a model).
func (c *Client) DType() tensor.DType {
	if c.Model == nil {
		return tensor.F64
	}
	return c.Model.DType()
}

// AugmentedBatch packs a batch into a model-dtype tensor, applying one
// augmentation per example when the client has an augmenter. Augmentation
// itself runs in float64 bookkeeping (it is per-pixel arithmetic on the
// stored examples); the batch narrows once, here, at the model boundary.
func (c *Client) AugmentedBatch(b []data.Example) (x *tensor.Tensor, y []int) {
	ch, h, w := c.InputGeometry()
	if c.Aug == nil {
		return data.BatchTensorOf(c.DType(), b, ch, h, w)
	}
	aug := make([]data.Example, len(b))
	for i, ex := range b {
		aug[i] = data.Example{X: c.Aug.Apply(ex.X, c.Rng), Y: ex.Y}
	}
	return data.BatchTensorOf(c.DType(), aug, ch, h, w)
}

// EvalAccuracy computes test accuracy with the model in evaluation mode,
// batching the test set to bound memory.
func (c *Client) EvalAccuracy() float64 {
	if len(c.Test) == 0 {
		return 0
	}
	ch, h, w := c.InputGeometry()
	const evalBatch = 64
	correct := 0
	for lo := 0; lo < len(c.Test); lo += evalBatch {
		hi := lo + evalBatch
		if hi > len(c.Test) {
			hi = len(c.Test)
		}
		x, y := data.BatchTensorOf(c.DType(), c.Test[lo:hi], ch, h, w)
		_, logits := c.Model.Forward(x, false)
		for i := range y {
			if logits.ArgMaxRow(i) == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(c.Test))
}

// TrainEpochCE trains one epoch with plain cross-entropy (the local-only
// baseline and the post-aggregation update of weight-sharing methods),
// returning the average loss. Inputs pass through the client's augmenter so
// every method trains on the same augmented distribution.
func (c *Client) TrainEpochCE(batchSize int) float64 {
	params := c.Model.Params()
	batches := data.Batches(c.Train, batchSize, c.Rng)
	var total float64
	var count int
	for _, b := range batches {
		x, y := c.AugmentedBatch(b)
		_, logits := c.Model.Forward(x, true)
		l, dlogits := loss.CrossEntropy(logits, y)
		total += l
		count++
		dfeat := c.Model.Classifier.Backward(dlogits)
		c.Model.Extractor.Backward(dfeat)
		c.Optimizer.Step(params)
		nn.ZeroGrads(params)
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Config controls a Simulation run.
type Config struct {
	Rounds     int
	SampleRate float64 // fraction of clients participating per round
	BatchSize  int
	Seed       int64
	// DropProb injects client failures: a sampled client drops out of the
	// round (its update is lost) with this probability.
	DropProb float64
	// EvalEvery evaluates accuracy every n rounds (default 1).
	EvalEvery int
	// Codec selects the wire codec payloads are accounted (and, through
	// Uplink, quantized) with. The zero value is lossless float64.
	Codec comm.Codec
}

// RoundMetrics is one evaluation point.
type RoundMetrics struct {
	Round       int
	LocalEpochs int // cumulative local epochs (the x-axis of Figures 4–7)
	MeanAcc     float64
	StdAcc      float64
	PerClient   []float64
	UpBytes     int64
	DownBytes   int64
	// SimTime is the cumulative virtual time (in client-update cost units)
	// at this evaluation point; round throughput comparisons across
	// schedulers divide Round by it.
	SimTime float64
}

// Algorithm is a federated training algorithm. Setup runs once before the
// first round; Round performs one communication round over the given
// participant client IDs.
type Algorithm interface {
	Name() string
	Setup(sim *Simulation) error
	Round(sim *Simulation, round int, participants []int) error
	// EpochsPerRound reports how many local epochs each participant runs
	// per round, used for the cumulative-epoch x-axis (KT-pFL uses 20).
	EpochsPerRound() int
}

// Simulation owns the clients, the traffic ledger and the metrics history.
type Simulation struct {
	Clients []*Client
	Ledger  *comm.Ledger
	Rng     *rand.Rand
	Cfg     Config
	History []RoundMetrics

	// src is the serializable source behind Rng, so checkpoints can freeze
	// the scheduler's sampling stream.
	src *xrand.Source
}

// NewSimulation builds a simulation over the given clients.
func NewSimulation(clients []*Client, cfg Config) *Simulation {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.SampleRate <= 0 || cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	ledger := comm.NewLedger()
	ledger.SetCodec(cfg.Codec)
	rng, src := xrand.NewRand(cfg.Seed)
	return &Simulation{
		Clients: clients,
		Ledger:  ledger,
		Rng:     rng,
		Cfg:     cfg,
		src:     src,
	}
}

// Run executes the algorithm for the configured number of rounds under the
// sync (lock-step) scheduler and returns the metrics history. Use
// RunScheduled to pick a different scheduler.
func (s *Simulation) Run(algo Algorithm) ([]RoundMetrics, error) {
	return s.RunScheduled(algo, SchedulerConfig{Kind: SchedSync})
}

// Uplink records a client → server payload on the traffic ledger and passes
// it through the configured wire codec's quantization in place, so lossy
// codecs (float32/int8) affect aggregation exactly as the wire would. It
// returns v for chaining. Safe to call from parallel client loops in sync
// rounds; AsyncLocal implementations must use Quantize plus Update.UpFloats
// instead, so the engine books the bytes at virtual delivery time.
func (s *Simulation) Uplink(client int, v []float64) []float64 {
	s.Ledger.RecordUp(client, len(v))
	comm.RoundTripInPlace(s.Cfg.Codec, v)
	return v
}

// Quantize passes v through the configured wire codec in place (no ledger
// recording) and returns it for chaining.
func (s *Simulation) Quantize(v []float64) []float64 {
	comm.RoundTripInPlace(s.Cfg.Codec, v)
	return v
}

// sampleParticipants draws ⌈K·rate⌉ distinct clients and applies failure
// injection.
func (s *Simulation) sampleParticipants() []int {
	return SampleCohort(s.Rng, len(s.Clients), s.Cfg.SampleRate, s.Cfg.DropProb)
}

// SampleCohort draws ⌈k·rate⌉ distinct client ids in ascending order and
// applies per-client failure injection, consuming exactly the RNG stream
// the simulation's schedulers consume. It is shared with the node runtime
// so a ServerNode at seed S samples the same cohorts as the in-process
// sync run at seed S.
func SampleCohort(rng *rand.Rand, k int, rate, dropProb float64) []int {
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	n := int(math.Ceil(float64(k) * rate))
	if n > k {
		n = k
	}
	perm := rng.Perm(k)[:n]
	sort.Ints(perm)
	if dropProb <= 0 {
		return perm
	}
	kept := perm[:0]
	for _, id := range perm {
		if rng.Float64() >= dropProb {
			kept = append(kept, id)
		}
	}
	return kept
}

// Evaluate measures every client's personalized test accuracy in parallel.
func (s *Simulation) Evaluate() RoundMetrics {
	accs := make([]float64, len(s.Clients))
	ParallelClients(len(s.Clients), func(i int) {
		accs[i] = s.Clients[i].EvalAccuracy()
	})
	mean, std := MeanStd(accs)
	return RoundMetrics{MeanAcc: mean, StdAcc: std, PerClient: accs}
}

// MeanStd returns the mean and population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// ParallelClients runs f(i) for i in [0,n) with dynamic load balancing on
// the persistent tensor worker pool (no goroutines are spawned per round);
// client-level parallelism mirrors the paper's MPI node-per-client layout.
func ParallelClients(n int, f func(i int)) {
	tensor.Parallel(n, f)
}
