package data

import (
	"reflect"
	"testing"
)

func TestLazyPartitionerPerClientDeterminism(t *testing.T) {
	ds := Generate(SynthFashion(8, 4, 3))
	opts := PartitionOptions{Kind: Dirichlet, Alpha: 0.5, Seed: 17}
	a, err := NewLazyPartitioner(ds, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLazyPartitioner(ds, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Client i is a pure function of (seed, i): the same split comes back no
	// matter which clients were asked for before, or how often.
	b.Client(42)
	b.Client(3)
	for _, i := range []int{7, 3, 49, 0} {
		if !reflect.DeepEqual(a.Client(i), b.Client(i)) {
			t.Fatalf("client %d differs between query orders", i)
		}
		if !reflect.DeepEqual(a.Client(i), a.Client(i)) {
			t.Fatalf("client %d differs between repeated queries", i)
		}
	}
	if reflect.DeepEqual(a.Client(7).Train, a.Client(8).Train) {
		t.Fatal("distinct clients drew identical training splits")
	}
}

func TestLazyPartitionerSizesAndLabels(t *testing.T) {
	ds := Generate(SynthFashion(8, 4, 3))
	p, err := NewLazyPartitioner(ds, 10, PartitionOptions{Kind: Skewed, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClients() != 10 {
		t.Fatalf("NumClients %d", p.NumClients())
	}
	wantTrain, wantTest := len(ds.Train)/10, len(ds.Test)/10
	for i := 0; i < 10; i++ {
		cd := p.Client(i)
		if cd.ID != i || len(cd.Train) != wantTrain || len(cd.Test) != wantTest {
			t.Fatalf("client %d: id %d, %d train, %d test (want %d, %d)",
				i, cd.ID, len(cd.Train), len(cd.Test), wantTrain, wantTest)
		}
		// Skewed gives each client exactly two classes.
		classes := map[int]bool{}
		for _, ex := range cd.Train {
			classes[ex.Y] = true
		}
		if len(classes) > 2 {
			t.Fatalf("skewed client %d drew %d classes", i, len(classes))
		}
	}
}

// More virtual clients than examples: every client still gets data (draws
// are with replacement), so million-client fleets over synthetic datasets
// alias examples instead of starving.
func TestLazyPartitionerOversubscribed(t *testing.T) {
	ds := Generate(SynthFashion(2, 1, 3))
	p, err := NewLazyPartitioner(ds, 10*len(ds.Train), PartitionOptions{Kind: Dirichlet, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, len(ds.Train), 10*len(ds.Train) - 1} {
		cd := p.Client(i)
		if len(cd.Train) < 1 || len(cd.Test) < 1 {
			t.Fatalf("client %d starved: %d train, %d test", i, len(cd.Train), len(cd.Test))
		}
	}
}

func TestLazyPartitionerRejectsBadInputs(t *testing.T) {
	ds := Generate(SynthFashion(2, 1, 3))
	if _, err := NewLazyPartitioner(ds, 0, PartitionOptions{Kind: Dirichlet}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewLazyPartitioner(ds, 4, PartitionOptions{Kind: PartitionKind(99)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
