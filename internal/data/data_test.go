package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallSpec(seed int64) Spec {
	s := SynthFashion(6, 4, seed)
	return s
}

func mustPartition(t testing.TB, ds *Dataset, k int, opts PartitionOptions) []ClientData {
	t.Helper()
	clients, err := Partition(ds, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return clients
}

// Partition must return errors, not panic, on bad caller input — fedsim
// feeds it straight from user flags.
func TestPartitionRejectsBadInput(t *testing.T) {
	ds := Generate(smallSpec(5))
	if _, err := Partition(ds, 0, PartitionOptions{Kind: Dirichlet}); err == nil {
		t.Fatal("k = 0 must be rejected")
	}
	if _, err := Partition(ds, 3, PartitionOptions{Kind: PartitionKind(99)}); err == nil {
		t.Fatal("unknown partition kind must be rejected")
	}
}

func TestParsePartition(t *testing.T) {
	for s, want := range map[string]PartitionKind{
		"dir": Dirichlet, "dirichlet": Dirichlet, "": Dirichlet,
		"skewed": Skewed, "skew": Skewed,
	} {
		got, err := ParsePartition(s)
		if err != nil || got != want {
			t.Fatalf("ParsePartition(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePartition("zipf"); err == nil {
		t.Fatal("unknown partition name must error")
	}
}

// Regression: a proportion vector poisoned with NaN, Inf or negatives must
// neither spin nor under-assign — every quota row still sums to total.
func TestLargestRemainderQuotaGuardsNaN(t *testing.T) {
	cases := [][]float64{
		{math.NaN(), 0.5, 0.5},
		{math.NaN(), math.NaN(), math.NaN()},
		{math.Inf(1), 0.25, 0.25},
		{-0.5, 0.75, 0.75},
		{0, 0, 0},
		{},
	}
	for i, props := range cases {
		quotas := largestRemainderQuota(props, 12)
		sum := 0
		for _, q := range quotas {
			if q < 0 {
				t.Fatalf("case %d: negative quota %v", i, quotas)
			}
			sum += q
		}
		want := 12
		if len(props) == 0 {
			want = 0
		}
		if sum != want {
			t.Fatalf("case %d: quotas %v sum to %d, want %d", i, quotas, sum, want)
		}
	}
	// Clean proportions keep exact largest-remainder behaviour.
	if got := largestRemainderQuota([]float64{0.5, 0.25, 0.25}, 4); got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("clean quota %v", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallSpec(5))
	b := Generate(smallSpec(5))
	if len(a.Train) != len(b.Train) {
		t.Fatal("sizes differ across identical specs")
	}
	for i := range a.Train {
		if a.Train[i].Y != b.Train[i].Y {
			t.Fatal("labels differ across identical specs")
		}
		for j := range a.Train[i].X {
			if a.Train[i].X[j] != b.Train[i].X[j] {
				t.Fatal("pixels differ across identical specs")
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(smallSpec(1))
	b := Generate(smallSpec(2))
	same := true
	for j := range a.Train[0].X {
		if a.Train[0].X[j] != b.Train[0].X[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateCountsAndRange(t *testing.T) {
	spec := smallSpec(3)
	ds := Generate(spec)
	if len(ds.Train) != spec.NumClasses*spec.TrainPerClass {
		t.Fatalf("train size %d", len(ds.Train))
	}
	if len(ds.Test) != spec.NumClasses*spec.TestPerClass {
		t.Fatalf("test size %d", len(ds.Test))
	}
	counts := make([]int, spec.NumClasses)
	for _, ex := range ds.Train {
		counts[ex.Y]++
		if len(ex.X) != ds.InputDim() {
			t.Fatalf("example dim %d, want %d", len(ex.X), ds.InputDim())
		}
		for _, v := range ex.X {
			if v < -1 || v > 1 {
				t.Fatalf("tanh output out of range: %v", v)
			}
		}
	}
	for c, n := range counts {
		if n != spec.TrainPerClass {
			t.Fatalf("class %d has %d train examples, want %d", c, n, spec.TrainPerClass)
		}
	}
}

func TestGenerateClassesAreSeparable(t *testing.T) {
	// A nearest-centroid classifier on raw pixels should beat chance
	// substantially: the task must be learnable.
	spec := SynthFashion(20, 20, 9)
	ds := Generate(spec)
	dim := ds.InputDim()
	centroids := make([][]float64, spec.NumClasses)
	counts := make([]int, spec.NumClasses)
	for i := range centroids {
		centroids[i] = make([]float64, dim)
	}
	for _, ex := range ds.Train {
		for j, v := range ex.X {
			centroids[ex.Y][j] += v
		}
		counts[ex.Y]++
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for _, ex := range ds.Test {
		best, bestD := -1, math.Inf(1)
		for c := range centroids {
			var d float64
			for j, v := range ex.X {
				dd := v - centroids[c][j]
				d += dd * dd
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == ex.Y {
			correct++
		}
	}
	acc := float64(correct) / float64(len(ds.Test))
	chance := 1.0 / float64(spec.NumClasses)
	if acc < 2*chance {
		t.Fatalf("nearest-centroid accuracy %.3f too close to chance %.3f; task unlearnable", acc, chance)
	}
}

func TestPublicSplitSize(t *testing.T) {
	pub := PublicSplit(smallSpec(4), 17, 99)
	if len(pub) != 17 {
		t.Fatalf("public split has %d examples, want 17", len(pub))
	}
}

// Property: every partition assigns each client exactly total/k train
// examples and no example is duplicated.
func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64, skew bool) bool {
		spec := smallSpec(7)
		ds := Generate(spec)
		kind := Dirichlet
		if skew {
			kind = Skewed
		}
		const k = 4
		clients, err := Partition(ds, k, PartitionOptions{Kind: kind, Alpha: 0.5, Seed: seed})
		if err != nil || len(clients) != k {
			return false
		}
		per := len(ds.Train) / k
		for _, c := range clients {
			if len(c.Train) != per {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSkewedTwoClasses(t *testing.T) {
	spec := SynthFashion(40, 10, 2)
	ds := Generate(spec)
	clients := mustPartition(t, ds, 5, PartitionOptions{Kind: Skewed, Seed: 3})
	for _, c := range clients {
		classes := map[int]bool{}
		for _, ex := range c.Train {
			classes[ex.Y] = true
		}
		// The skewed partitioner targets two classes; pool exhaustion can
		// add fallback classes, but the dominant two should hold >80%.
		hist := map[int]int{}
		for _, ex := range c.Train {
			hist[ex.Y]++
		}
		top2 := 0
		for pass := 0; pass < 2; pass++ {
			best, bestN := -1, -1
			for cls, n := range hist {
				if n > bestN {
					best, bestN = cls, n
				}
			}
			top2 += bestN
			delete(hist, best)
		}
		if frac := float64(top2) / float64(len(c.Train)); frac < 0.8 {
			t.Fatalf("client %d: top-2 classes cover only %.2f of data", c.ID, frac)
		}
	}
}

func TestPartitionDirichletSkewIncreasesWithSmallAlpha(t *testing.T) {
	spec := SynthFashion(60, 10, 11)
	ds := Generate(spec)
	skewAt := func(alpha float64) float64 {
		clients := mustPartition(t, ds, 6, PartitionOptions{Kind: Dirichlet, Alpha: alpha, Seed: 5})
		hist := LabelHistogram(clients, ds.NumClasses)
		// Mean per-client max-class share.
		var total float64
		for _, row := range hist {
			sum, max := 0, 0
			for _, v := range row {
				sum += v
				if v > max {
					max = v
				}
			}
			total += float64(max) / float64(sum)
		}
		return total / float64(len(hist))
	}
	if skewAt(0.1) <= skewAt(100) {
		t.Fatalf("alpha 0.1 should be more skewed than alpha 100: %.3f vs %.3f", skewAt(0.1), skewAt(100))
	}
}

func TestLabelHistogramSums(t *testing.T) {
	spec := smallSpec(13)
	ds := Generate(spec)
	clients := mustPartition(t, ds, 3, PartitionOptions{Kind: Dirichlet, Alpha: 0.5, Seed: 1})
	hist := LabelHistogram(clients, ds.NumClasses)
	for i, row := range hist {
		sum := 0
		for _, v := range row {
			sum += v
		}
		if sum != len(clients[i].Train) {
			t.Fatalf("histogram row %d sums to %d, want %d", i, sum, len(clients[i].Train))
		}
	}
}

func TestBatchTensorLayout(t *testing.T) {
	examples := []Example{
		{X: []float64{1, 2, 3, 4}, Y: 0},
		{X: []float64{5, 6, 7, 8}, Y: 1},
	}
	x, y := BatchTensor(examples, 1, 2, 2)
	if x.Dim(0) != 2 || x.Dim(1) != 1 || x.Dim(2) != 2 || x.Dim(3) != 2 {
		t.Fatalf("bad shape %v", x.Shape)
	}
	if x.Data[4] != 5 || y[1] != 1 {
		t.Fatal("bad layout")
	}
}

// Property: Batches covers every example exactly once and never yields a
// singleton batch (which the contrastive loss cannot handle) unless the
// entire dataset is one example.
func TestBatchesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, bsRaw uint8) bool {
		n := int(nRaw%40) + 2
		bs := int(bsRaw%10) + 2
		examples := make([]Example, n)
		for i := range examples {
			examples[i] = Example{X: []float64{float64(i)}, Y: i}
		}
		rng := rand.New(rand.NewSource(seed))
		batches := Batches(examples, bs, rng)
		seen := map[int]bool{}
		for _, b := range batches {
			if len(b) == 1 {
				return false
			}
			for _, ex := range b {
				if seen[ex.Y] {
					return false
				}
				seen[ex.Y] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmenterPreservesShapeAndDiffers(t *testing.T) {
	aug := NewAugmenter(1, 4, 4)
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(i) / 16
	}
	v1, v2 := aug.TwoViews(x, rng)
	if len(v1) != 16 || len(v2) != 16 {
		t.Fatal("augmented views must keep length")
	}
	same := true
	for i := range v1 {
		if v1[i] != v2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two views should differ (noise + shift)")
	}
	// Original must be untouched.
	if x[5] != 5.0/16 {
		t.Fatal("augmenter mutated its input")
	}
}

func TestAugmenterClampsRange(t *testing.T) {
	aug := NewAugmenter(1, 3, 3)
	aug.NoiseStd = 10 // extreme noise to force clamping
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 9)
	out := aug.Apply(x, rng)
	for _, v := range out {
		if v < -1.5 || v > 1.5 {
			t.Fatalf("augmented pixel out of clamp range: %v", v)
		}
	}
}

func TestGammaSamplerMoments(t *testing.T) {
	// Gamma(alpha, 1) has mean alpha; check within sampling tolerance.
	rng := rand.New(rand.NewSource(7))
	for _, alpha := range []float64{0.5, 1, 3} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(alpha, rng)
		}
		mean := sum / n
		if math.Abs(mean-alpha) > 0.1*alpha+0.05 {
			t.Fatalf("Gamma(%v) sample mean %v too far from %v", alpha, mean, alpha)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		p := dirichletSample(7, 0.5, rng)
		var s float64
		for _, v := range p {
			if v < 0 {
				t.Fatal("negative proportion")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Dirichlet sums to %v", s)
		}
	}
}

func TestLargestRemainderQuota(t *testing.T) {
	q := largestRemainderQuota([]float64{0.5, 0.3, 0.2}, 10)
	if q[0]+q[1]+q[2] != 10 {
		t.Fatalf("quota sum %v", q)
	}
	if q[0] != 5 || q[1] != 3 || q[2] != 2 {
		t.Fatalf("quota %v", q)
	}
	// Rounding case.
	q2 := largestRemainderQuota([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 10)
	if q2[0]+q2[1]+q2[2] != 10 {
		t.Fatalf("quota2 sum %v", q2)
	}
}
