package data

import (
	"math"
	"math/rand"
)

// Augmenter produces the stochastic perturbed views x' and x” used by the
// supervised contrastive loss: random integer shifts, optional horizontal
// flips, and additive Gaussian pixel noise. It mirrors the light geometric +
// photometric augmentations the paper applies.
type Augmenter struct {
	C, H, W  int
	MaxShift int     // maximum absolute shift in pixels per axis
	Flip     bool    // enable horizontal flips (used for the CIFAR stand-in)
	NoiseStd float64 // additive Gaussian pixel noise
}

// NewAugmenter builds an augmenter with the defaults used throughout the
// experiments (shift ±1, noise 0.05; flips enabled for RGB datasets).
func NewAugmenter(c, h, w int) *Augmenter {
	return &Augmenter{C: c, H: h, W: w, MaxShift: 1, Flip: c == 3, NoiseStd: 0.05}
}

// Apply returns a fresh augmented copy of x (length C·H·W).
func (a *Augmenter) Apply(x []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(x))
	dy := 0
	dx := 0
	if a.MaxShift > 0 {
		dy = rng.Intn(2*a.MaxShift+1) - a.MaxShift
		dx = rng.Intn(2*a.MaxShift+1) - a.MaxShift
	}
	flip := a.Flip && rng.Intn(2) == 1
	for c := 0; c < a.C; c++ {
		base := c * a.H * a.W
		for i := 0; i < a.H; i++ {
			si := i + dy
			for j := 0; j < a.W; j++ {
				sj := j + dx
				if flip {
					sj = a.W - 1 - sj
				}
				var v float64
				if si >= 0 && si < a.H && sj >= 0 && sj < a.W {
					v = x[base+si*a.W+sj]
				}
				if a.NoiseStd > 0 {
					v += rng.NormFloat64() * a.NoiseStd
				}
				out[base+i*a.W+j] = clamp(v, -1.5, 1.5)
			}
		}
	}
	return out
}

// TwoViews returns two independent augmentations of x.
func (a *Augmenter) TwoViews(x []float64, rng *rand.Rand) ([]float64, []float64) {
	return a.Apply(x, rng), a.Apply(x, rng)
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// Helper math wrappers used by the partitioner's Gamma sampler; isolated
// here so partition.go stays free of direct math imports in hot loops.

func sqrtf(x float64) float64 { return math.Sqrt(x) }
func logf(x float64) float64  { return math.Log(x) }
func powf(x, y float64) float64 {
	return math.Pow(x, y)
}
