package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ClientData is one client's personalized train/test split. Per the paper,
// the client's test set follows the same label distribution as its training
// data, so "average test accuracy" measures personalized performance.
type ClientData struct {
	ID    int
	Train []Example
	Test  []Example
}

// PartitionKind selects a non-iid partitioning strategy.
type PartitionKind int

const (
	// Dirichlet samples each client's class proportions from Dir(alpha),
	// as in the paper's Dir(0.5) setting (Figures 2a, 3a).
	Dirichlet PartitionKind = iota
	// Skewed gives each client exactly two classes (Figures 2b, 3b).
	Skewed
)

// String names the partition kind as the paper does.
func (k PartitionKind) String() string {
	switch k {
	case Dirichlet:
		return "Dir(0.5)"
	case Skewed:
		return "Skewed"
	default:
		return fmt.Sprintf("PartitionKind(%d)", int(k))
	}
}

// ParsePartition maps a flag value ("dir" | "dirichlet" | "skewed") to a
// PartitionKind.
func ParsePartition(s string) (PartitionKind, error) {
	switch s {
	case "dir", "dirichlet", "":
		return Dirichlet, nil
	case "skewed", "skew":
		return Skewed, nil
	}
	return Dirichlet, fmt.Errorf("data: unknown partition %q (want dir | skewed)", s)
}

// PartitionOptions configures Partition.
type PartitionOptions struct {
	Kind  PartitionKind
	Alpha float64 // Dirichlet concentration; the paper uses 0.5
	Seed  int64
}

// Partition splits a dataset across k clients with equal per-client data
// sizes (the paper equalizes client data volumes). Both train and test
// examples for a client are drawn according to the same per-client class
// proportions. It returns an error for k < 1 or an unknown partition kind;
// bad flag input must surface as a usage failure, not a panic.
func Partition(ds *Dataset, k int, opts PartitionOptions) ([]ClientData, error) {
	if k < 1 {
		return nil, fmt.Errorf("data: Partition needs k >= 1, got %d", k)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	props, err := clientClassProportions(ds.NumClasses, k, opts, rng)
	if err != nil {
		return nil, err
	}

	trainPer := len(ds.Train) / k
	testPer := len(ds.Test) / k
	clients := make([]ClientData, k)
	trainPools := poolByClass(ds.Train, ds.NumClasses)
	testPools := poolByClass(ds.Test, ds.NumClasses)
	for i := 0; i < k; i++ {
		clients[i] = ClientData{
			ID:    i,
			Train: drawByProportions(trainPools, props[i], trainPer, rng),
			Test:  drawByProportions(testPools, props[i], testPer, rng),
		}
	}
	return clients, nil
}

// clientClassProportions returns, for each client, its class mixture.
func clientClassProportions(numClasses, k int, opts PartitionOptions, rng *rand.Rand) ([][]float64, error) {
	props := make([][]float64, k)
	switch opts.Kind {
	case Dirichlet:
		alpha := opts.Alpha
		if alpha <= 0 {
			alpha = 0.5
		}
		for i := range props {
			props[i] = dirichletSample(numClasses, alpha, rng)
		}
	case Skewed:
		// Each client holds two classes. Classes are assigned round-robin
		// over a shuffled class order so every class appears for roughly
		// 2k/numClasses clients.
		order := rng.Perm(numClasses)
		for i := range props {
			p := make([]float64, numClasses)
			c1 := order[(2*i)%numClasses]
			c2 := order[(2*i+1)%numClasses]
			p[c1] = 0.5
			p[c2] += 0.5
			props[i] = p
		}
	default:
		return nil, fmt.Errorf("data: unknown partition kind %d", opts.Kind)
	}
	return props, nil
}

// dirichletSample draws from a symmetric Dirichlet via Gamma(alpha, 1)
// marginals (Marsaglia–Tsang for alpha<1 handled by boosting).
func dirichletSample(n int, alpha float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		g := gammaSample(alpha, rng)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(alpha, 1) with the Marsaglia–Tsang method,
// boosting alpha < 1 through the U^{1/alpha} identity.
func gammaSample(alpha float64, rng *rand.Rand) float64 {
	if alpha < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(alpha+1, rng) * powf(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / (3.0 * sqrtf(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if logf(u) < 0.5*x*x+d-d*v+d*logf(v) {
			return d * v
		}
	}
}

// poolByClass buckets examples by label and shuffles nothing (callers draw
// with their own RNG).
func poolByClass(examples []Example, numClasses int) [][]Example {
	pools := make([][]Example, numClasses)
	for _, ex := range examples {
		pools[ex.Y] = append(pools[ex.Y], ex)
	}
	return pools
}

// drawByProportions draws total examples following props, consuming from
// the shared class pools. When a requested class runs dry it falls back to
// the best-stocked class so every client receives exactly `total` examples
// (the paper equalizes client data sizes).
func drawByProportions(pools [][]Example, props []float64, total int, rng *rand.Rand) []Example {
	out := make([]Example, 0, total)
	// Integer quotas via largest remainder.
	quotas := largestRemainderQuota(props, total)
	for c, q := range quotas {
		for j := 0; j < q; j++ {
			ex, ok := popRandom(pools, c, rng)
			if !ok {
				ex, ok = popFromRichest(pools, rng)
				if !ok {
					return out // every pool empty
				}
			}
			out = append(out, ex)
		}
	}
	return out
}

// largestRemainderQuota converts proportions into integer counts summing to
// total. Proportions are defended before use: a NaN, infinite or negative
// entry (possible from a degenerate Dirichlet draw) contributes nothing,
// because int(NaN) truncates to 0 and sorting NaN remainders is unspecified
// — without the guard a poisoned props vector under-assigns quotas or
// orders the remainder pass arbitrarily.
func largestRemainderQuota(props []float64, total int) []int {
	quotas := make([]int, len(props))
	if len(props) == 0 || total <= 0 {
		return quotas
	}
	clean := make([]float64, len(props))
	var sum float64
	for i, p := range props {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			p = 0
		}
		clean[i] = p
		sum += p
	}
	if sum <= 0 {
		// Nothing usable: fall back to a uniform split.
		for i := range clean {
			clean[i] = 1
		}
		sum = float64(len(clean))
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(clean))
	assigned := 0
	for i, p := range clean {
		exact := p / sum * float64(total)
		quotas[i] = int(exact)
		assigned += quotas[i]
		rems[i] = rem{i, exact - float64(quotas[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total; i++ {
		quotas[rems[i%len(rems)].idx]++
		assigned++
	}
	return quotas
}

func popRandom(pools [][]Example, c int, rng *rand.Rand) (Example, bool) {
	pool := pools[c]
	if len(pool) == 0 {
		return Example{}, false
	}
	j := rng.Intn(len(pool))
	ex := pool[j]
	pool[j] = pool[len(pool)-1]
	pools[c] = pool[:len(pool)-1]
	return ex, true
}

func popFromRichest(pools [][]Example, rng *rand.Rand) (Example, bool) {
	best, bestLen := -1, 0
	for c, pool := range pools {
		if len(pool) > bestLen {
			best, bestLen = c, len(pool)
		}
	}
	if best < 0 {
		return Example{}, false
	}
	return popRandom(pools, best, rng)
}

// LabelHistogram returns the per-client label counts of the training
// splits, the data behind Figures 2 and 3.
func LabelHistogram(clients []ClientData, numClasses int) [][]int {
	hist := make([][]int, len(clients))
	for i, c := range clients {
		row := make([]int, numClasses)
		for _, ex := range c.Train {
			row[ex.Y]++
		}
		hist[i] = row
	}
	return hist
}
