// Package data provides the synthetic stand-ins for CIFAR-10, Fashion-MNIST
// and EMNIST Letters used by the reproduction, together with the two
// non-iid partitioners from the paper (Dirichlet label distribution and
// skewed two-class distribution), the augmentation pipeline that produces
// the two contrastive views, and batching utilities.
//
// A synthetic dataset draws, for every class, a latent prototype vector;
// examples are noisy latent samples pushed through a fixed random affine map
// followed by tanh into C×H×W image space. The mapping is fixed per dataset
// seed, so train and test examples share structure, classes overlap in
// proportion to the noise level, and convolutional as well as dense models
// can learn the task. This preserves the experimental variables the paper
// manipulates — label skew, class count, dataset difficulty — while being
// tractable for pure-Go CPU training (see DESIGN.md for the substitution
// rationale).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Example is one labeled image, stored flat in C·H·W order.
type Example struct {
	X []float64
	Y int
}

// Dataset is a complete synthetic dataset with train and test splits.
type Dataset struct {
	Name       string
	C, H, W    int
	NumClasses int
	Train      []Example
	Test       []Example
}

// InputDim returns C·H·W.
func (d *Dataset) InputDim() int { return d.C * d.H * d.W }

// Spec configures the synthetic generator.
type Spec struct {
	Name       string
	C, H, W    int
	NumClasses int
	LatentDim  int
	// Modes is the number of latent prototype clusters per class. Values
	// above one make classes multi-modal: a learner that has seen only a
	// few samples of a class has likely seen only a subset of its modes and
	// cannot generalize to the rest — the structural property that gives
	// collaborative training its edge over local-only training, mirroring
	// the intra-class variety of natural image classes.
	Modes int
	// NoiseStd controls intra-class spread in latent space; larger values
	// make classes overlap more (harder task).
	NoiseStd float64
	// PrototypeSpread scales class prototype separation; smaller values
	// make classes more confusable.
	PrototypeSpread float64
	TrainPerClass   int
	TestPerClass    int
	Seed            int64
}

// Presets mirroring the paper's three benchmarks. Sizes are scaled down for
// single-CPU pure-Go training; shapes, channel counts and class counts keep
// the original relationships (CIFAR: RGB and hardest; EMNIST: most classes).

// SynthCIFAR returns the CIFAR-10 stand-in spec (RGB, 10 classes, hardest).
func SynthCIFAR(trainPerClass, testPerClass int, seed int64) Spec {
	return Spec{
		Name: "synth-cifar10", C: 3, H: 12, W: 12, NumClasses: 10,
		LatentDim: 16, Modes: 3, NoiseStd: 0.8, PrototypeSpread: 1.0,
		TrainPerClass: trainPerClass, TestPerClass: testPerClass, Seed: seed,
	}
}

// SynthFashion returns the Fashion-MNIST stand-in spec (grayscale, 10 classes).
func SynthFashion(trainPerClass, testPerClass int, seed int64) Spec {
	return Spec{
		Name: "synth-fashion", C: 1, H: 12, W: 12, NumClasses: 10,
		LatentDim: 16, Modes: 3, NoiseStd: 0.6, PrototypeSpread: 1.2,
		TrainPerClass: trainPerClass, TestPerClass: testPerClass, Seed: seed,
	}
}

// SynthEMNIST returns the EMNIST Letters stand-in spec (grayscale, 26 classes).
func SynthEMNIST(trainPerClass, testPerClass int, seed int64) Spec {
	return Spec{
		Name: "synth-emnist", C: 1, H: 12, W: 12, NumClasses: 26,
		LatentDim: 20, Modes: 2, NoiseStd: 0.5, PrototypeSpread: 1.3,
		TrainPerClass: trainPerClass, TestPerClass: testPerClass, Seed: seed,
	}
}

// Generate materializes a dataset from a spec. The same spec always yields
// the same dataset.
func Generate(spec Spec) *Dataset {
	if spec.NumClasses < 2 || spec.LatentDim < 1 {
		panic(fmt.Sprintf("data: invalid spec %+v", spec))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	dim := spec.C * spec.H * spec.W
	modes := spec.Modes
	if modes < 1 {
		modes = 1
	}

	// Per-class, per-mode prototypes in latent space. Modes of one class are
	// unrelated points, so knowing one mode says nothing about the others.
	protos := make([][][]float64, spec.NumClasses)
	for c := range protos {
		protos[c] = make([][]float64, modes)
		for m := range protos[c] {
			p := make([]float64, spec.LatentDim)
			for j := range p {
				p[j] = rng.NormFloat64() * spec.PrototypeSpread
			}
			protos[c][m] = p
		}
	}
	// Fixed random two-layer nonlinear map latent → image, so classes are
	// not linearly separable in pixel space.
	hiddenDim := 2 * spec.LatentDim
	proj1 := tensor.New(spec.LatentDim, hiddenDim)
	proj1.FillRandn(rng, 1/math.Sqrt(float64(spec.LatentDim)))
	proj2 := tensor.New(hiddenDim, dim)
	proj2.FillRandn(rng, 1.2/math.Sqrt(float64(hiddenDim)))
	bias := make([]float64, dim)
	for j := range bias {
		bias[j] = rng.NormFloat64() * 0.1
	}

	sample := func(class int) Example {
		mode := rng.Intn(modes)
		lat := make([]float64, spec.LatentDim)
		for j := range lat {
			lat[j] = protos[class][mode][j] + rng.NormFloat64()*spec.NoiseStd
		}
		hidden := make([]float64, hiddenDim)
		for j := 0; j < hiddenDim; j++ {
			var s float64
			for k := 0; k < spec.LatentDim; k++ {
				s += lat[k] * proj1.At(k, j)
			}
			hidden[j] = math.Tanh(s)
		}
		x := make([]float64, dim)
		for j := 0; j < dim; j++ {
			var s float64
			for k := 0; k < hiddenDim; k++ {
				s += hidden[k] * proj2.At(k, j)
			}
			x[j] = math.Tanh(s + bias[j])
		}
		return Example{X: x, Y: class}
	}

	ds := &Dataset{
		Name: spec.Name, C: spec.C, H: spec.H, W: spec.W,
		NumClasses: spec.NumClasses,
	}
	for c := 0; c < spec.NumClasses; c++ {
		for i := 0; i < spec.TrainPerClass; i++ {
			ds.Train = append(ds.Train, sample(c))
		}
		for i := 0; i < spec.TestPerClass; i++ {
			ds.Test = append(ds.Test, sample(c))
		}
	}
	// Shuffle so class order carries no information.
	rng.Shuffle(len(ds.Train), func(i, j int) { ds.Train[i], ds.Train[j] = ds.Train[j], ds.Train[i] })
	rng.Shuffle(len(ds.Test), func(i, j int) { ds.Test[i], ds.Test[j] = ds.Test[j], ds.Test[i] })
	return ds
}

// PublicSplit generates extra unlabeled-use examples from the same
// generative process (fresh seed), used as KT-pFL's public dataset. The
// returned examples carry labels but callers treat them as unlabeled.
func PublicSplit(spec Spec, n int, seed int64) []Example {
	s := spec
	s.Seed = seed
	perClass := n/s.NumClasses + 1
	s.TrainPerClass = perClass
	s.TestPerClass = 0
	ds := Generate(s)
	if len(ds.Train) > n {
		ds.Train = ds.Train[:n]
	}
	return ds.Train
}

// BatchTensor packs examples into a float64 [N, C, H, W] tensor plus label
// slice.
func BatchTensor(examples []Example, c, h, w int) (*tensor.Tensor, []int) {
	return BatchTensorOf(tensor.F64, examples, c, h, w)
}

// BatchTensorOf packs examples into a [N, C, H, W] tensor of the given
// dtype plus label slice. Examples store pixels as float64 bookkeeping;
// narrowing happens here, once per batch, at the model boundary.
func BatchTensorOf(dt tensor.DType, examples []Example, c, h, w int) (*tensor.Tensor, []int) {
	n := len(examples)
	x := tensor.NewOf(dt, n, c, h, w)
	y := make([]int, n)
	dim := c * h * w
	for i, ex := range examples {
		x.WriteFloat64sAt(i*dim, ex.X)
		y[i] = ex.Y
	}
	return x, y
}

// Batches shuffles examples with rng and returns contiguous mini-batches of
// at most batchSize examples (the final batch may be smaller but never has
// fewer than two examples, which the contrastive loss needs; a one-example
// remainder is folded into the previous batch).
func Batches(examples []Example, batchSize int, rng *rand.Rand) [][]Example {
	idx := rng.Perm(len(examples))
	shuffled := make([]Example, len(examples))
	for i, j := range idx {
		shuffled[i] = examples[j]
	}
	var out [][]Example
	for lo := 0; lo < len(shuffled); lo += batchSize {
		hi := lo + batchSize
		if hi > len(shuffled) {
			hi = len(shuffled)
		}
		out = append(out, shuffled[lo:hi])
	}
	if len(out) >= 2 && len(out[len(out)-1]) == 1 {
		// Merge a singleton tail into the previous batch.
		last := len(out) - 1
		out[last-1] = shuffled[len(shuffled)-batchSize-1 : len(shuffled)]
		out = out[:last]
	}
	return out
}
