package data

import (
	"fmt"
	"math/rand"
)

// LazyPartitioner is the virtual-fleet counterpart of Partition: instead of
// materializing all k client splits up front (O(dataset · k) memory for a
// million clients), it precomputes only the immutable per-class example
// pools and hands out client i's split on demand as a pure function of
// (seed, i). Determinism is per-client, not sequential: the same (ds, k,
// opts, i) always yields the same split, no matter which clients were
// asked for before — the property a lazy client store needs to rebuild an
// evicted client bit-identically.
//
// The construction necessarily differs from Partition's: the eager
// partitioner draws sequentially without replacement from shared pools (a
// stateful process that cannot be replayed per-client), so the lazy one
// draws with replacement from the immutable pools. Class mixtures follow
// the same Dirichlet/Skewed models; per-client sizes are the same
// len/k equalized volumes. The two partitioners are therefore two
// different samples of the same distribution family, not byte-equal.
type LazyPartitioner struct {
	k          int
	numClasses int
	trainPer   int
	testPer    int
	opts       PartitionOptions
	trainPools [][]Example
	testPools  [][]Example
	// skewOrder is the Skewed mode's shuffled class order, drawn once from
	// the seed so client i's class pair is a pure function of i.
	skewOrder []int
}

// NewLazyPartitioner validates options and builds the immutable pools.
func NewLazyPartitioner(ds *Dataset, k int, opts PartitionOptions) (*LazyPartitioner, error) {
	if k < 1 {
		return nil, fmt.Errorf("data: LazyPartitioner needs k >= 1, got %d", k)
	}
	if opts.Kind != Dirichlet && opts.Kind != Skewed {
		return nil, fmt.Errorf("data: unknown partition kind %d", opts.Kind)
	}
	p := &LazyPartitioner{
		k:          k,
		numClasses: ds.NumClasses,
		trainPer:   clampMin1(len(ds.Train) / k),
		testPer:    clampMin1(len(ds.Test) / k),
		opts:       opts,
		trainPools: poolByClass(ds.Train, ds.NumClasses),
		testPools:  poolByClass(ds.Test, ds.NumClasses),
	}
	if opts.Kind == Skewed {
		rng := rand.New(rand.NewSource(opts.Seed))
		p.skewOrder = rng.Perm(ds.NumClasses)
	}
	return p, nil
}

// clampMin1 keeps per-client sizes positive when k exceeds the dataset: a
// million virtual clients over a synthetic dataset alias examples rather
// than starve.
func clampMin1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Client returns client i's split, deterministically derived from (seed, i)
// alone.
func (p *LazyPartitioner) Client(i int) ClientData {
	if i < 0 || i >= p.k {
		panic(fmt.Sprintf("data: lazy partition client %d out of range [0,%d)", i, p.k))
	}
	rng := rand.New(rand.NewSource(p.opts.Seed*1000003 + int64(i)*7919 ^ 0x70617274)) // "part"
	var props []float64
	switch p.opts.Kind {
	case Dirichlet:
		alpha := p.opts.Alpha
		if alpha <= 0 {
			alpha = 0.5
		}
		props = dirichletSample(p.numClasses, alpha, rng)
	case Skewed:
		props = make([]float64, p.numClasses)
		c1 := p.skewOrder[(2*i)%p.numClasses]
		c2 := p.skewOrder[(2*i+1)%p.numClasses]
		props[c1] = 0.5
		props[c2] += 0.5
	}
	return ClientData{
		ID:    i,
		Train: drawWithReplacement(p.trainPools, props, p.trainPer, rng),
		Test:  drawWithReplacement(p.testPools, props, p.testPer, rng),
	}
}

// NumClients returns k.
func (p *LazyPartitioner) NumClients() int { return p.k }

// drawWithReplacement draws total examples following props from immutable
// class pools. Empty requested classes fall back to the globally richest
// pool, mirroring drawByProportions' starvation policy.
func drawWithReplacement(pools [][]Example, props []float64, total int, rng *rand.Rand) []Example {
	out := make([]Example, 0, total)
	richest := -1
	for c, pool := range pools {
		if richest < 0 || len(pool) > len(pools[richest]) {
			if len(pool) > 0 {
				richest = c
			}
		}
	}
	quotas := largestRemainderQuota(props, total)
	for c, q := range quotas {
		pool := pools[c]
		if len(pool) == 0 {
			if richest < 0 {
				return out // every pool empty
			}
			pool = pools[richest]
		}
		for j := 0; j < q; j++ {
			out = append(out, pool[rng.Intn(len(pool))])
		}
	}
	return out
}
