package xrand

import (
	"math/rand"
	"testing"
)

func TestDeterministicStream(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

// The property the checkpoint subsystem depends on: capturing State and
// restoring it elsewhere must continue the derived rand.Rand stream exactly,
// across every Rand method the simulation uses.
func TestStateRoundTripContinuesRandStream(t *testing.T) {
	ref, _ := NewRand(7)
	fork, src := NewRand(7)

	drain := func(r *rand.Rand) []float64 {
		var out []float64
		for i := 0; i < 50; i++ {
			out = append(out, r.Float64(), float64(r.Intn(97)), r.NormFloat64())
			for _, p := range r.Perm(5) {
				out = append(out, float64(p))
			}
		}
		return out
	}
	drain(ref)
	drain(fork)

	state := src.State()
	restored := New(0)
	restored.SetState(state)
	cont := rand.New(restored)

	want := drain(ref)
	got := drain(cont)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored stream diverged at value %d: %v vs %v", i, got[i], want[i])
		}
	}
	// fork kept its own source and must agree too (sanity on the adapter).
	if g := drain(fork); g[0] != want[0] {
		t.Fatalf("forked stream diverged: %v vs %v", g[0], want[0])
	}
}

func TestUniformity(t *testing.T) {
	// Crude balance check: the top bit should be ~50/50 over 64k draws.
	s := New(3)
	ones := 0
	const n = 1 << 16
	for i := 0; i < n; i++ {
		if s.Uint64()>>63 == 1 {
			ones++
		}
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Fatalf("top-bit bias: %d ones of %d", ones, n)
	}
}
