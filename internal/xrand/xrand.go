// Package xrand provides a small pseudo-random source whose full internal
// state is a single exported word, so RNG streams can be captured in a
// checkpoint and resumed bit-exactly. The standard library's default source
// (math/rand.rngSource) hides 607 words of state behind unexported fields;
// a federation checkpoint has to freeze every client's stream mid-run, so
// the simulation threads this source through math/rand.Rand instead.
//
// The generator is SplitMix64 (Steele, Lea & Flood 2014): a Weyl sequence
// with a 64-bit finalizer. It is not cryptographic, but it is equidistributed
// over its 2^64 period and more than adequate for client sampling, data
// shuffling and augmentation draws.
package xrand

import "math/rand"

// Source is a serializable rand.Source64. The zero value is a valid stream
// (seed 0); use New or Seed to position it.
type Source struct {
	state uint64
}

// golden is the SplitMix64 Weyl increment (2^64 / φ).
const golden = 0x9e3779b97f4a7c15

// New returns a source positioned at the given seed.
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// NewRand returns a math/rand.Rand drawing from a fresh serializable source,
// plus the source itself so callers can snapshot and restore the stream.
// Every derived Rand method (Intn, Perm, Float64, NormFloat64, Shuffle, ...)
// is a pure function of the source stream, so restoring the source state
// restores the whole Rand.
func NewRand(seed int64) (*rand.Rand, *Source) {
	src := New(seed)
	return rand.New(src), src
}

// Seed repositions the stream.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 advances the Weyl sequence and returns the finalized output.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// State returns the stream position for checkpointing.
func (s *Source) State() uint64 { return s.state }

// SetState repositions the stream to a checkpointed position.
func (s *Source) SetState(state uint64) { s.state = state }
