package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// twoClusters builds n points in two well-separated Gaussian blobs.
func twoClusters(n, d int, sep float64, rng *rand.Rand) (*tensor.Tensor, []int) {
	x := tensor.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		for j := 0; j < d; j++ {
			center := 0.0
			if cls == 1 && j == 0 {
				center = sep
			}
			x.Set(i, j, center+0.3*rng.NormFloat64())
		}
	}
	return x, labels
}

func TestTSNEPreservesClusterStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := twoClusters(40, 8, 8, rng)
	y := TSNE(x, TSNEOptions{Perplexity: 8, Iterations: 200, Seed: 2})
	if y.Rows() != 40 || y.Cols() != 2 {
		t.Fatalf("embedding shape %v", y.Shape)
	}
	// Clusters separated in input space must stay mostly separated: the
	// embedding's kNN label purity should be high.
	purity := KNNLabelPurity(y, labels, 5)
	if purity < 0.8 {
		t.Fatalf("embedding purity %.3f too low; clusters merged", purity)
	}
}

func TestTSNEDeterministicAndCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := twoClusters(20, 5, 6, rng)
	a := TSNE(x, TSNEOptions{Iterations: 80, Seed: 7})
	b := TSNE(x, TSNEOptions{Iterations: 80, Seed: 7})
	if !tensor.ApproxEqual(a, b, 0) {
		t.Fatal("t-SNE must be deterministic for a fixed seed")
	}
	var mx, my float64
	for i := 0; i < a.Rows(); i++ {
		mx += a.At(i, 0)
		my += a.At(i, 1)
	}
	if math.Abs(mx) > 1e-6 || math.Abs(my) > 1e-6 {
		t.Fatalf("embedding not centered: (%g, %g)", mx, my)
	}
}

func TestKNNLabelPurity(t *testing.T) {
	// Perfectly separated clusters → purity 1.
	rng := rand.New(rand.NewSource(4))
	x, labels := twoClusters(20, 4, 50, rng)
	if p := KNNLabelPurity(x, labels, 3); p != 1 {
		t.Fatalf("separated purity %v, want 1", p)
	}
	// Random labels → purity near the base rate (0.5 for two balanced
	// classes).
	shuffled := append([]int(nil), labels...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	p := KNNLabelPurity(x, shuffled, 3)
	if p > 0.85 {
		t.Fatalf("shuffled purity %v suspiciously high", p)
	}
	if KNNLabelPurity(tensor.New(0, 2), nil, 3) != 0 {
		t.Fatal("empty input should score 0")
	}
}

func TestClientMixingIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := twoClusters(20, 4, 50, rng)
	// Clients split along the cluster boundary → zero mixing.
	clientOf := make([]int, 20)
	for i := range clientOf {
		clientOf[i] = i % 2
	}
	if m := ClientMixingIndex(x, clientOf, 3); m != 0 {
		t.Fatalf("separated clients mixing %v, want 0", m)
	}
	// Clients interleaved within clusters → high mixing.
	interleaved := make([]int, 20)
	for i := range interleaved {
		interleaved[i] = (i / 2) % 2
	}
	if m := ClientMixingIndex(x, interleaved, 3); m < 0.35 {
		t.Fatalf("interleaved clients mixing %v, want ≥ 0.35", m)
	}
}

func TestRankScores(t *testing.T) {
	ranks := RankScores([]float64{0.5, -1, 3})
	want := []int{1, 0, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks %v, want %v", ranks, want)
		}
	}
}

func TestSpearmanRank(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10} // same order
	if r := SpearmanRank(a, b); math.Abs(r-1) > 1e-12 {
		t.Fatalf("monotone Spearman %v, want 1", r)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if r := SpearmanRank(a, rev); math.Abs(r+1) > 1e-12 {
		t.Fatalf("reversed Spearman %v, want -1", r)
	}
	if r := SpearmanRank(a, []float64{1, 2}); r != 0 {
		t.Fatal("length mismatch should return 0")
	}
}

func TestMeanPairwiseSpearman(t *testing.T) {
	attrs := [][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{3, 2, 1},
	}
	// pairs: (0,1)=1, (0,2)=-1, (1,2)=-1 → mean = -1/3
	got := MeanPairwiseSpearman(attrs)
	if math.Abs(got+1.0/3) > 1e-12 {
		t.Fatalf("mean Spearman %v, want -1/3", got)
	}
	if MeanPairwiseSpearman(attrs[:1]) != 0 {
		t.Fatal("single vector should return 0")
	}
}

func TestRankHeatmapShape(t *testing.T) {
	attrs := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}}
	hm := RankHeatmap(attrs, 3)
	lines := 0
	for _, ch := range hm {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Fatalf("heatmap has %d lines, want 3 (maxUnits)", lines)
	}
	if RankHeatmap(nil, 5) != "" {
		t.Fatal("empty heatmap should be empty string")
	}
}

func TestPairwiseSquaredDistances(t *testing.T) {
	x := tensor.FromSlice([]float64{0, 0, 3, 4}, 2, 2)
	d := pairwiseSquaredDistances(x)
	if d.At(0, 1) != 25 || d.At(1, 0) != 25 || d.At(0, 0) != 0 {
		t.Fatalf("distances %v", d.Data)
	}
}
