package analysis

import (
	"math"
	"sort"

	"repro/internal/models"
	"repro/internal/tensor"
)

// Conductance computes the layer-conductance attribution (Dhamdhere et al.,
// "How Important is a Neuron?") of each classifier input unit for the
// predicted class of one probe input. For the paper's split models the
// classifier is a single linear layer y = f·W + b, so the conductance of
// unit j along the straight-line path from the zero baseline is exactly the
// integrated-gradient decomposition f_j·W[j, class]. The returned vector
// has one attribution per feature unit.
func Conductance(m *models.SplitModel, x *tensor.Tensor, class int) []float64 {
	feats := m.Features(x, false)
	out := make([]float64, feats.Cols())
	w := m.Classifier.W.Value
	// Attributions are analysis bookkeeping: features and weights widen to
	// float64 whatever dtype the model trains in.
	row := make([]float64, feats.Cols())
	feats.RowTo(0, row)
	for j := range out {
		out[j] = row[j] * w.At(j, class)
	}
	return out
}

// RankScores converts attributions to dense ranks (0 = least important).
// Ties share the order of their indices, which is deterministic.
func RankScores(attr []float64) []int {
	idx := make([]int, len(attr))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return attr[idx[a]] < attr[idx[b]] })
	ranks := make([]int, len(attr))
	for r, i := range idx {
		ranks[i] = r
	}
	return ranks
}

// SpearmanRank computes the Spearman rank correlation between two
// attribution vectors: Pearson correlation of their rank scores.
func SpearmanRank(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := RankScores(a), RankScores(b)
	return pearsonInts(ra, rb)
}

func pearsonInts(a, b []int) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += float64(a[i])
		mb += float64(b[i])
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da := float64(a[i]) - ma
		db := float64(b[i]) - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// MeanPairwiseSpearman averages the Spearman correlation over all client
// pairs — the scalar summary of Figure 9 ("units have a similar attribution
// rank score in general").
func MeanPairwiseSpearman(attrs [][]float64) float64 {
	n := len(attrs)
	if n < 2 {
		return 0
	}
	var total float64
	var pairs int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total += SpearmanRank(attrs[i], attrs[j])
			pairs++
		}
	}
	return total / float64(pairs)
}

// RankHeatmap renders rank scores for several clients as a coarse text
// heatmap (units down the rows, clients across the columns), binned into
// ten intensity levels — a terminal rendition of Figure 9.
func RankHeatmap(attrs [][]float64, maxUnits int) string {
	if len(attrs) == 0 {
		return ""
	}
	units := len(attrs[0])
	if maxUnits > 0 && units > maxUnits {
		units = maxUnits
	}
	ranks := make([][]int, len(attrs))
	for i, a := range attrs {
		ranks[i] = RankScores(a)
	}
	shades := []byte(" .:-=+*#%@")
	buf := make([]byte, 0, units*(len(attrs)+1))
	denom := float64(len(attrs[0]) - 1)
	if denom <= 0 {
		denom = 1
	}
	for u := 0; u < units; u++ {
		for c := range attrs {
			level := int(float64(ranks[c][u]) / denom * float64(len(shades)-1))
			buf = append(buf, shades[level])
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
