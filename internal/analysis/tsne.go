// Package analysis implements the paper's analysis tooling: a from-scratch
// t-SNE for the Figure 8 feature-space visualizations (reported as
// embedding-quality metrics, since the harness is headless) and the
// layer-conductance attribution comparison of Figure 9.
package analysis

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// TSNEOptions configures the embedding.
type TSNEOptions struct {
	Perplexity   float64 // effective number of neighbors (default 15)
	Iterations   int     // gradient steps (default 300)
	LearningRate float64 // default 100
	Seed         int64
	// EarlyExaggeration multiplies affinities for the first quarter of the
	// iterations (default 4).
	EarlyExaggeration float64
}

// TSNE embeds the rows of x ([N, D]) into 2-D with the classic
// Student-t SNE of van der Maaten & Hinton: Gaussian input affinities with
// per-point bandwidths found by binary search on the perplexity, a
// Student-t low-dimensional kernel, and momentum gradient descent with
// early exaggeration. O(N²) per iteration — fine for the ≤1000-point
// samples the paper visualizes.
func TSNE(x *tensor.Tensor, opts TSNEOptions) *tensor.Tensor {
	x = x.AsType(tensor.F64) // analysis is float64 bookkeeping at any model dtype
	n := x.Rows()
	if opts.Perplexity <= 0 {
		opts.Perplexity = 15
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 300
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 100
	}
	if opts.EarlyExaggeration <= 0 {
		opts.EarlyExaggeration = 4
	}
	if float64(n-1) < opts.Perplexity {
		opts.Perplexity = math.Max(2, float64(n-1)/3)
	}
	p := inputAffinities(x, opts.Perplexity)

	rng := rand.New(rand.NewSource(opts.Seed))
	y := tensor.New(n, 2)
	y.FillRandn(rng, 1e-2)
	vel := tensor.New(n, 2)
	gains := tensor.New(n, 2)
	gains.Fill(1)

	exagUntil := opts.Iterations / 4
	for iter := 0; iter < opts.Iterations; iter++ {
		exag := 1.0
		if iter < exagUntil {
			exag = opts.EarlyExaggeration
		}
		grad := tsneGradient(p, y, exag)
		momentum := 0.5
		if iter >= 20 {
			momentum = 0.8
		}
		for j := 0; j < 2*n; j++ {
			// Adaptive gains as in the reference implementation.
			if (grad.Data[j] > 0) == (vel.Data[j] > 0) {
				gains.Data[j] = math.Max(0.01, gains.Data[j]*0.8)
			} else {
				gains.Data[j] += 0.2
			}
			vel.Data[j] = momentum*vel.Data[j] - opts.LearningRate*gains.Data[j]*grad.Data[j]
			y.Data[j] += vel.Data[j]
		}
		centerRows(y)
	}
	return y
}

// inputAffinities computes the symmetrized conditional Gaussian affinities
// P with per-point bandwidth chosen by binary search on perplexity.
func inputAffinities(x *tensor.Tensor, perplexity float64) *tensor.Tensor {
	n := x.Rows()
	d2 := pairwiseSquaredDistances(x)
	logU := math.Log(perplexity)
	p := tensor.New(n, n)
	for i := 0; i < n; i++ {
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		row := d2.Row(i)
		var probs []float64
		for tries := 0; tries < 50; tries++ {
			probs = condProbs(row, i, beta)
			h := entropy(probs, i)
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high → sharpen
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		copy(p.Row(i), probs)
	}
	// Symmetrize and normalize: P_ij = (p_j|i + p_i|j)/(2n), floored.
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (p.At(i, j) + p.At(j, i)) / (2 * float64(n))
			out.Set(i, j, math.Max(v, 1e-12))
		}
	}
	return out
}

// condProbs returns the conditional distribution over j≠i with precision
// beta.
func condProbs(d2row []float64, i int, beta float64) []float64 {
	n := len(d2row)
	probs := make([]float64, n)
	var sum float64
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		v := math.Exp(-d2row[j] * beta)
		probs[j] = v
		sum += v
	}
	if sum == 0 {
		sum = 1
	}
	for j := range probs {
		probs[j] /= sum
	}
	return probs
}

// entropy returns the Shannon entropy of the conditional distribution.
func entropy(probs []float64, i int) float64 {
	var h float64
	for j, p := range probs {
		if j == i || p <= 0 {
			continue
		}
		h -= p * math.Log(p)
	}
	return h
}

// tsneGradient computes the Kullback-Leibler gradient with the Student-t
// kernel.
func tsneGradient(p, y *tensor.Tensor, exaggeration float64) *tensor.Tensor {
	n := y.Rows()
	// q_ij ∝ (1 + ‖y_i − y_j‖²)^-1
	num := tensor.New(n, n)
	var z float64
	for i := 0; i < n; i++ {
		yi := y.Row(i)
		for j := i + 1; j < n; j++ {
			yj := y.Row(j)
			dx := yi[0] - yj[0]
			dy := yi[1] - yj[1]
			v := 1 / (1 + dx*dx + dy*dy)
			num.Set(i, j, v)
			num.Set(j, i, v)
			z += 2 * v
		}
	}
	if z == 0 {
		z = 1
	}
	grad := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		yi := y.Row(i)
		gi := grad.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			qij := num.At(i, j) / z
			mult := 4 * (exaggeration*p.At(i, j) - qij) * num.At(i, j)
			yj := y.Row(j)
			gi[0] += mult * (yi[0] - yj[0])
			gi[1] += mult * (yi[1] - yj[1])
		}
	}
	return grad
}

// pairwiseSquaredDistances returns the N×N matrix of squared Euclidean
// distances between rows.
func pairwiseSquaredDistances(x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Rows(), x.Cols()
	out := tensor.New(n, n)
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for j := i + 1; j < n; j++ {
			xj := x.Row(j)
			var s float64
			for k := 0; k < d; k++ {
				dd := xi[k] - xj[k]
				s += dd * dd
			}
			out.Set(i, j, s)
			out.Set(j, i, s)
		}
	}
	return out
}

func centerRows(y *tensor.Tensor) {
	n := y.Rows()
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += y.At(i, 0)
		my += y.At(i, 1)
	}
	mx /= float64(n)
	my /= float64(n)
	for i := 0; i < n; i++ {
		y.Set(i, 0, y.At(i, 0)-mx)
		y.Set(i, 1, y.At(i, 1)-my)
	}
}

// KNNLabelPurity measures, for each point, the fraction of its k nearest
// neighbors (in the embedding or feature space) sharing its label, averaged
// over points. Higher is better clustering by label — the quantitative
// version of Figure 8's claim.
func KNNLabelPurity(x *tensor.Tensor, labels []int, k int) float64 {
	x = x.AsType(tensor.F64)
	n := x.Rows()
	if n == 0 || k <= 0 {
		return 0
	}
	d2 := pairwiseSquaredDistances(x)
	var total float64
	for i := 0; i < n; i++ {
		idx := nearestK(d2.Row(i), i, k)
		same := 0
		for _, j := range idx {
			if labels[j] == labels[i] {
				same++
			}
		}
		total += float64(same) / float64(len(idx))
	}
	return total / float64(n)
}

// ClientMixingIndex measures, for each point, the fraction of its k nearest
// neighbors coming from a *different* client. After FedClassAvg, same-label
// features from different clients collocate, so mixing rises relative to
// the isolated baseline (Figure 8's "client cluster is split" observation).
func ClientMixingIndex(x *tensor.Tensor, clientOf []int, k int) float64 {
	x = x.AsType(tensor.F64)
	n := x.Rows()
	if n == 0 || k <= 0 {
		return 0
	}
	d2 := pairwiseSquaredDistances(x)
	var total float64
	for i := 0; i < n; i++ {
		idx := nearestK(d2.Row(i), i, k)
		other := 0
		for _, j := range idx {
			if clientOf[j] != clientOf[i] {
				other++
			}
		}
		total += float64(other) / float64(len(idx))
	}
	return total / float64(n)
}

// nearestK returns the indices of the k smallest entries of row, skipping
// self.
func nearestK(row []float64, self, k int) []int {
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, 0, len(row)-1)
	for j, d := range row {
		if j != self {
			cands = append(cands, cand{j, d})
		}
	}
	// Partial selection sort: k is small.
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].d < cands[best].d {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}
