package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// blobs builds n points per class around well-separated class centers.
func blobs(classes, perClass, dim int, spread float64, seed int64) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := classes * perClass
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for c := 0; c < classes; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = rng.NormFloat64() * 10
		}
		for i := 0; i < perClass; i++ {
			row := x.Row(c*perClass + i)
			for j := range row {
				row[j] = center[j] + rng.NormFloat64()*spread
			}
			labels[c*perClass+i] = c
		}
	}
	return x, labels
}

// The embedding must be a pure function of (input, options): two runs at the
// same seed are bit-identical, a different seed moves points.
func TestTSNEDeterminism(t *testing.T) {
	x, _ := blobs(3, 10, 8, 1, 7)
	opts := TSNEOptions{Seed: 11, Iterations: 60}
	a := TSNE(x, opts)
	b := TSNE(x, opts)
	if a.Size() != b.Size() {
		t.Fatal("embedding sizes differ")
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("embedding element %d differs across identical runs: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
	opts.Seed = 12
	c := TSNE(x, opts)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must produce different embeddings")
	}
}

// Well-separated clusters must stay separated in the embedding: kNN label
// purity near 1 in 2-D, far above the 1/classes chance level.
func TestTSNEPreservesClusters(t *testing.T) {
	x, labels := blobs(3, 12, 8, 0.5, 9)
	y := TSNE(x, TSNEOptions{Seed: 5, Iterations: 200})
	if y.Rows() != x.Rows() || y.Cols() != 2 {
		t.Fatalf("embedding shape %v", y.Shape)
	}
	for _, v := range y.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("embedding contains non-finite values")
		}
	}
	if purity := KNNLabelPurity(y, labels, 5); purity < 0.85 {
		t.Fatalf("embedded purity %.3f, want >= 0.85 for well-separated blobs", purity)
	}
}

// Perplexity above n-1 must be clamped, not loop forever or NaN out.
func TestTSNETinyInput(t *testing.T) {
	x, _ := blobs(2, 3, 4, 0.5, 3)
	y := TSNE(x, TSNEOptions{Seed: 1, Iterations: 30, Perplexity: 50})
	for _, v := range y.Data {
		if math.IsNaN(v) {
			t.Fatal("tiny-input embedding went NaN")
		}
	}
}

// The analysis entry points accept f32 feature tensors (widening to their
// float64 bookkeeping) and agree with the widened-input result exactly.
func TestAnalysisAcceptsF32Inputs(t *testing.T) {
	x64, labels := blobs(2, 8, 6, 0.5, 13)
	x32 := x64.AsType(tensor.F32)
	// Widen back: TSNE of x32 must equal TSNE of the widened values.
	wide := x32.AsType(tensor.F64)
	a := TSNE(x32, TSNEOptions{Seed: 3, Iterations: 40})
	b := TSNE(wide, TSNEOptions{Seed: 3, Iterations: 40})
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("TSNE(f32 input) must match TSNE of the widened input")
		}
	}
	if p32, p64 := KNNLabelPurity(x32, labels, 3), KNNLabelPurity(wide, labels, 3); p32 != p64 {
		t.Fatalf("KNNLabelPurity differs across dtypes: %v vs %v", p32, p64)
	}
}

// Conductance widens f32 features exactly like the f64 path computes them.
func TestConductanceDTypeParity(t *testing.T) {
	cfg := models.Config{Arch: models.ArchMLP, InC: 1, InH: 6, InW: 6, FeatDim: 8, NumClasses: 4, Hidden: 8}
	m64 := models.New(cfg, xrand.New(31))
	cfg.DType = tensor.F32
	m32 := models.New(cfg, xrand.New(31))
	x := tensor.New(1, 1, 6, 6)
	x.FillRandn(rand.New(rand.NewSource(32)), 1)
	a64 := Conductance(m64, x, 1)
	a32 := Conductance(m32, x, 1)
	for j := range a64 {
		if math.Abs(a64[j]-a32[j]) > 1e-5 {
			t.Fatalf("attribution %d diverges: %g vs %g", j, a64[j], a32[j])
		}
	}
	// Ranks must be computable and a permutation.
	ranks := RankScores(a32)
	seen := make([]bool, len(ranks))
	for _, r := range ranks {
		seen[r] = true
	}
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d missing; RankScores must be a permutation", r)
		}
	}
}
