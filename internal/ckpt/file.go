package ckpt

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/comm"
	"repro/internal/fl"
)

// FileName is the canonical checkpoint file name for a committed round.
func FileName(round int) string { return fmt.Sprintf("round-%05d.ckpt", round) }

// Save writes a snapshot to path atomically: the bytes land in a temporary
// sibling file first and are renamed into place, so a reader (or a
// kill-and-resume script polling the directory) never observes a partial
// checkpoint.
func Save(path string, snap *fl.Snapshot, codec comm.Codec) error {
	b, err := Marshal(snap, codec)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Load reads a snapshot from path.
func Load(path string) (*fl.Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	snap, err := Unmarshal(b)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading %s: %w", path, err)
	}
	return snap, nil
}

// Saver returns a fl.SchedulerConfig.Checkpoint callback that writes every
// received snapshot into dir as round-NNNNN.ckpt (cadence is controlled by
// fl.SchedulerConfig.CheckpointEvery).
func Saver(dir string, codec comm.Codec) func(*fl.Snapshot) error {
	return func(snap *fl.Snapshot) error {
		return Save(filepath.Join(dir, FileName(snap.Round)), snap, codec)
	}
}
