// Checkpoint round-trip goldens: snapshot at round R through the binary
// format, restore into a freshly built simulation, and the continued run
// must be byte-identical (metrics and scheduler trace) to the uninterrupted
// one — for the sync, async and semi-sync schedulers.
package ckpt_test

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// fleet builds k identically seeded MLP clients with serializable RNG
// sources, over a non-iid Fashion-MNIST stand-in split. Homogeneous models
// keep every algorithm runnable.
func fleet(t *testing.T, k int) []*fl.Client { return fleetOf(t, k, tensor.F64) }

func fleetOf(t *testing.T, k int, dt tensor.DType) []*fl.Client {
	t.Helper()
	ds := data.Generate(data.SynthFashion(6, 4, 3))
	parts, err := data.Partition(ds, k, data.PartitionOptions{Kind: data.Dirichlet, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fl.Client, k)
	for i := range clients {
		m := models.New(models.Config{
			Arch: models.ArchMLP, InC: ds.C, InH: ds.H, InW: ds.W,
			FeatDim: 8, NumClasses: ds.NumClasses, Hidden: 16, DType: dt,
		}, xrand.New(int64(i+1)))
		rng, src := xrand.NewRand(int64(i + 100))
		clients[i] = &fl.Client{
			ID: i, Model: m, Train: parts[i].Train, Test: parts[i].Test,
			Aug:       data.NewAugmenter(ds.C, ds.H, ds.W),
			Rng:       rng,
			Src:       src,
			Optimizer: opt.NewAdam(0.01),
		}
	}
	return clients
}

func encodeHistory(t *testing.T, hist []fl.RoundMetrics) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(hist); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func schedFor(kind fl.SchedulerKind) fl.SchedulerConfig {
	return fl.SchedulerConfig{
		Kind:         kind,
		Costs:        []float64{2, 1, 1, 1},
		MaxStaleness: 3,
		Decay:        0.5,
		Quorum:       3,
	}
}

// killResumeGolden runs algo uninterrupted, then re-runs it with a
// checkpoint captured (through Marshal/Unmarshal) at captureRound and a
// fresh simulation resumed from it; histories and traces must match
// byte for byte.
func killResumeGolden(t *testing.T, kind fl.SchedulerKind, mkAlgo func() fl.Algorithm) {
	killResumeGoldenOf(t, kind, tensor.F64, mkAlgo)
}

func killResumeGoldenOf(t *testing.T, kind fl.SchedulerKind, dt tensor.DType, mkAlgo func() fl.Algorithm) {
	t.Helper()
	const rounds, captureRound = 5, 2
	cfg := fl.Config{Rounds: rounds, BatchSize: 8, Seed: 9}
	fleet := func(t *testing.T, k int) []*fl.Client { return fleetOf(t, k, dt) }

	// Uninterrupted reference.
	refTrace := &fl.Trace{}
	refSched := schedFor(kind)
	refSched.Trace = refTrace
	refSim := fl.NewSimulation(fleet(t, 4), cfg)
	refHist, err := refSim.RunScheduled(mkAlgo(), refSched)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointed run (identical seed): capture the serialized snapshot at
	// captureRound, then discard the process state.
	var blob []byte
	ckptSched := schedFor(kind)
	ckptSched.Trace = &fl.Trace{}
	ckptSched.Checkpoint = func(snap *fl.Snapshot) error {
		if snap.Round == captureRound {
			b, err := ckpt.Marshal(snap, comm.F64)
			if err != nil {
				return err
			}
			blob = b
		}
		return nil
	}
	ckptSim := fl.NewSimulation(fleet(t, 4), cfg)
	ckptHist, err := ckptSim.RunScheduled(mkAlgo(), ckptSched)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpointing must not perturb the schedule.
	if !bytes.Equal(encodeHistory(t, refHist), encodeHistory(t, ckptHist)) {
		t.Fatal("enabling checkpoints changed the metrics history")
	}
	if blob == nil {
		t.Fatalf("no checkpoint captured at round %d", captureRound)
	}

	// Resume into a completely fresh simulation, as a restarted process
	// would.
	snap, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Round != captureRound || snap.Kind != kind {
		t.Fatalf("decoded snapshot round %d kind %v", snap.Round, snap.Kind)
	}
	resTrace := &fl.Trace{}
	resSched := schedFor(kind)
	resSched.Trace = resTrace
	resSched.Resume = snap
	resSim := fl.NewSimulation(fleet(t, 4), cfg)
	resHist, err := resSim.RunScheduled(mkAlgo(), resSched)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(encodeHistory(t, refHist), encodeHistory(t, resHist)) {
		t.Fatalf("resumed metrics history differs from the uninterrupted run\nref: %+v\ngot: %+v", refHist, resHist)
	}
	if !reflect.DeepEqual(refTrace, resTrace) {
		t.Fatalf("resumed scheduler trace differs from the uninterrupted run\nref: %d events\ngot: %d events",
			len(refTrace.Events), len(resTrace.Events))
	}
}

func TestKillResumeGoldenFedClassAvg(t *testing.T) {
	for _, kind := range []fl.SchedulerKind{fl.SchedSync, fl.SchedAsyncBounded, fl.SchedSemiSync} {
		t.Run(kind.String(), func(t *testing.T) {
			killResumeGolden(t, kind, func() fl.Algorithm { return core.New(core.DefaultOptions()) })
		})
	}
}

// The byte-identical replay contract holds at float32 exactly as at
// float64: flat snapshot vectors are f32-exact, so a resumed f32 run
// continues the interrupted trajectory bit for bit.
func TestKillResumeGoldenFloat32(t *testing.T) {
	for _, kind := range []fl.SchedulerKind{fl.SchedSync, fl.SchedAsyncBounded, fl.SchedSemiSync} {
		t.Run(kind.String(), func(t *testing.T) {
			killResumeGoldenOf(t, kind, tensor.F32, func() fl.Algorithm { return core.New(core.DefaultOptions()) })
		})
	}
}

// And at bf16: parameters live at bf16 precision (f32-representable by
// construction), so snapshot vectors capture them exactly and a resumed
// bf16 run replays the interrupted trajectory bit for bit.
func TestKillResumeGoldenBF16(t *testing.T) {
	for _, kind := range []fl.SchedulerKind{fl.SchedSync, fl.SchedAsyncBounded, fl.SchedSemiSync} {
		t.Run(kind.String(), func(t *testing.T) {
			killResumeGoldenOf(t, kind, tensor.BF16, func() fl.Algorithm { return core.New(core.DefaultOptions()) })
		})
	}
}

// A checkpoint records the run's model dtype; restoring into a fleet of the
// other dtype must fail fast with a clear error.
func TestResumeRejectsDTypeMismatch(t *testing.T) {
	cfg := fl.Config{Rounds: 2, BatchSize: 8, Seed: 3}
	var blob []byte
	sched := schedFor(fl.SchedAsyncBounded)
	sched.Checkpoint = func(snap *fl.Snapshot) error {
		if blob == nil {
			b, err := ckpt.Marshal(snap, comm.F64)
			blob = b
			return err
		}
		return nil
	}
	sim := fl.NewSimulation(fleetOf(t, 4, tensor.F32), cfg)
	if _, err := sim.RunScheduled(baselines.NewFedAvg(1), sched); err != nil {
		t.Fatal(err)
	}
	snap, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.DType != tensor.F32 {
		t.Fatalf("snapshot dtype %v, want f32 recorded in the header", snap.DType)
	}
	bad := schedFor(fl.SchedAsyncBounded)
	bad.Resume = snap
	_, err = fl.NewSimulation(fleetOf(t, 4, tensor.F64), cfg).RunScheduled(baselines.NewFedAvg(1), bad)
	if err == nil {
		t.Fatal("resuming an f32 checkpoint into an f64 fleet must fail")
	}
}

func TestKillResumeGoldenFedAvg(t *testing.T) {
	for _, kind := range []fl.SchedulerKind{fl.SchedSync, fl.SchedAsyncBounded, fl.SchedSemiSync} {
		t.Run(kind.String(), func(t *testing.T) {
			killResumeGolden(t, kind, func() fl.Algorithm { return baselines.NewFedAvg(1) })
		})
	}
}

// FedProto exercises the nil-able prototype vectors and the class-segmented
// accumulator; KT-pFL the pending-transfer tables.
func TestKillResumeGoldenStatefulAlgorithms(t *testing.T) {
	t.Run("FedProto", func(t *testing.T) {
		killResumeGolden(t, fl.SchedAsyncBounded, func() fl.Algorithm { return baselines.NewFedProto(1, 1.0) })
	})
	t.Run("KT-pFL+weight", func(t *testing.T) {
		killResumeGolden(t, fl.SchedSemiSync, func() fl.Algorithm { return baselines.NewKTpFLWeights(1) })
	})
}

// Churn: a run where clients leave and rejoin must still commit every
// configured round, with monotonically increasing commit versions — and
// must survive kill/resume like any other run.
func TestChurnCompletesAndResumes(t *testing.T) {
	const rounds = 6
	cfg := fl.Config{Rounds: rounds, BatchSize: 8, Seed: 11}
	mkSched := func() fl.SchedulerConfig {
		return fl.SchedulerConfig{
			Kind:        fl.SchedAsyncBounded,
			Costs:       []float64{2, 1, 1, 1},
			LeaveProb:   0.3,
			RejoinAfter: 3,
		}
	}

	tr := &fl.Trace{}
	sched := mkSched()
	sched.Trace = tr
	var blob []byte
	sched.Checkpoint = func(snap *fl.Snapshot) error {
		if snap.Round == 3 {
			b, err := ckpt.Marshal(snap, comm.F64)
			blob = b
			return err
		}
		return nil
	}
	sim := fl.NewSimulation(fleet(t, 4), cfg)
	hist, err := sim.RunScheduled(core.New(core.DefaultOptions()), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != rounds {
		t.Fatalf("churn run recorded %d rounds, want %d", len(hist), rounds)
	}
	leaves, lastCommit := 0, 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case fl.TraceLeave:
			leaves++
		case fl.TraceCommit:
			if ev.Version != lastCommit+1 {
				t.Fatalf("commit version jumped %d -> %d", lastCommit, ev.Version)
			}
			lastCommit = ev.Version
		}
	}
	if leaves == 0 {
		t.Fatal("LeaveProb 0.3 over 6 rounds produced no leave events")
	}
	if lastCommit != rounds {
		t.Fatalf("last commit version %d, want %d", lastCommit, rounds)
	}

	// Resume mid-churn: departed clients must stay departed.
	snap, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	resSched := mkSched()
	resTrace := &fl.Trace{}
	resSched.Trace = resTrace
	resSched.Resume = snap
	resSim := fl.NewSimulation(fleet(t, 4), cfg)
	resHist, err := resSim.RunScheduled(core.New(core.DefaultOptions()), resSched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeHistory(t, hist), encodeHistory(t, resHist)) {
		t.Fatal("churn run resumed differently from the uninterrupted run")
	}
	if !reflect.DeepEqual(tr, resTrace) {
		t.Fatal("churn trace resumed differently from the uninterrupted run")
	}
}

// Quantized checkpoints restore and run to completion (the space/fidelity
// trade is allowed to change metrics, not to break the run), and are
// smaller than lossless ones.
func TestQuantizedCheckpointRestores(t *testing.T) {
	cfg := fl.Config{Rounds: 4, BatchSize: 8, Seed: 5}
	var f64Blob, i8Blob []byte
	sched := schedFor(fl.SchedAsyncBounded)
	sched.Checkpoint = func(snap *fl.Snapshot) error {
		if snap.Round == 2 {
			var err error
			if f64Blob, err = ckpt.Marshal(snap, comm.F64); err != nil {
				return err
			}
			if i8Blob, err = ckpt.Marshal(snap, comm.I8); err != nil {
				return err
			}
		}
		return nil
	}
	sim := fl.NewSimulation(fleet(t, 4), cfg)
	if _, err := sim.RunScheduled(core.New(core.DefaultOptions()), sched); err != nil {
		t.Fatal(err)
	}
	if len(i8Blob)*2 >= len(f64Blob) {
		t.Fatalf("int8 checkpoint is %d bytes vs %d lossless — expected at least 2x smaller", len(i8Blob), len(f64Blob))
	}
	snap, err := ckpt.Unmarshal(i8Blob)
	if err != nil {
		t.Fatal(err)
	}
	resSched := schedFor(fl.SchedAsyncBounded)
	resSched.Resume = snap
	resSim := fl.NewSimulation(fleet(t, 4), cfg)
	hist, err := resSim.RunScheduled(core.New(core.DefaultOptions()), resSched)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != cfg.Rounds {
		t.Fatalf("quantized resume recorded %d rounds, want %d", len(hist), cfg.Rounds)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := fl.Config{Rounds: 2, BatchSize: 8, Seed: 3}
	sched := schedFor(fl.SchedSemiSync)
	sched.Checkpoint = ckpt.Saver(dir, comm.F64)
	sim := fl.NewSimulation(fleet(t, 4), cfg)
	if _, err := sim.RunScheduled(baselines.NewFedAvg(1), sched); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		snap, err := ckpt.Load(filepath.Join(dir, ckpt.FileName(round)))
		if err != nil {
			t.Fatal(err)
		}
		if snap.Round != round {
			t.Fatalf("loaded round %d from %s", snap.Round, ckpt.FileName(round))
		}
	}
	// No temporary files left behind by the atomic writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("checkpoint dir holds %d entries, want 2", len(entries))
	}
}

// The version-4 fields — eval RNG stream, explicit fleet size, per-round
// evaluation sample ids — must survive the wire format.
func TestV4FieldsRoundTrip(t *testing.T) {
	cfg := fl.Config{Rounds: 2, BatchSize: 8, Seed: 3, EvalSample: 2}
	var blob []byte
	sched := schedFor(fl.SchedSync)
	sched.Checkpoint = func(snap *fl.Snapshot) error {
		b, err := ckpt.Marshal(snap, comm.F64)
		blob = b
		return err
	}
	sim := fl.NewSimulation(fleet(t, 4), cfg)
	if _, err := sim.RunScheduled(baselines.NewFedAvg(1), sched); err != nil {
		t.Fatal(err)
	}
	snap, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.FleetSize != 4 {
		t.Fatalf("fleet size %d, want 4", snap.FleetSize)
	}
	if snap.EvalRng == 0 {
		t.Fatal("eval RNG stream position not captured")
	}
	if len(snap.History) == 0 {
		t.Fatal("no history")
	}
	for _, m := range snap.History {
		if len(m.EvalIDs) != 2 || len(m.PerClient) != 2 {
			t.Fatalf("history entry lost its eval sample: %+v", m)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := ckpt.Unmarshal(nil); err == nil {
		t.Fatal("empty input must be rejected")
	}
	if _, err := ckpt.Unmarshal([]byte("NOTACKPTFILE....")); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// A valid checkpoint truncated anywhere must error, never panic.
	cfg := fl.Config{Rounds: 1, BatchSize: 8, Seed: 3}
	var blob []byte
	sched := fl.SchedulerConfig{Checkpoint: func(snap *fl.Snapshot) error {
		b, err := ckpt.Marshal(snap, comm.F64)
		blob = b
		return err
	}}
	sim := fl.NewSimulation(fleet(t, 4), cfg)
	if _, err := sim.RunScheduled(baselines.NewFedAvg(1), sched); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{9, 17, len(blob) / 2, len(blob) - 1} {
		if _, err := ckpt.Unmarshal(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes must be rejected", cut)
		}
	}
	// Trailing bytes are an error too.
	if _, err := ckpt.Unmarshal(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

// Resuming under a mismatched configuration must fail fast with a clear
// error, not corrupt state.
func TestResumeValidation(t *testing.T) {
	cfg := fl.Config{Rounds: 2, BatchSize: 8, Seed: 3}
	var blob []byte
	sched := schedFor(fl.SchedAsyncBounded)
	sched.Checkpoint = func(snap *fl.Snapshot) error {
		if blob == nil {
			b, err := ckpt.Marshal(snap, comm.F64)
			blob = b
			return err
		}
		return nil
	}
	sim := fl.NewSimulation(fleet(t, 4), cfg)
	if _, err := sim.RunScheduled(baselines.NewFedAvg(1), sched); err != nil {
		t.Fatal(err)
	}
	snap, err := ckpt.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong scheduler kind.
	bad := schedFor(fl.SchedSemiSync)
	bad.Resume = snap
	if _, err := fl.NewSimulation(fleet(t, 4), cfg).RunScheduled(baselines.NewFedAvg(1), bad); err == nil {
		t.Fatal("resuming an async checkpoint under semisync must fail")
	}
	// Wrong client count.
	bad2 := schedFor(fl.SchedAsyncBounded)
	bad2.Resume = snap
	if _, err := fl.NewSimulation(fleet(t, 3), cfg).RunScheduled(baselines.NewFedAvg(1), bad2); err == nil {
		t.Fatal("resuming with a different fleet size must fail")
	}
}
