// Package ckpt serializes fl.Snapshot federation checkpoints to a
// versioned binary format and back, so long sweeps survive process death:
// run-to-round-R, kill, resume is byte-identical in metrics and scheduler
// trace to an uninterrupted run at the same seed (under the lossless f64
// codec).
//
// # File format (version 4)
//
// A checkpoint file is
//
//	[8]  magic "FEDCKPT1"
//	[4]  format version (uint32, little-endian)
//	[4]  bulk payload codec (uint32: comm.F64 | comm.F32 | comm.I8)
//	[4]  model dtype (uint32: tensor.F64 | tensor.F32) — version 2
//	[..] body
//
// The model dtype records the element type the run trained in; resuming
// into a fleet of a different dtype is rejected cleanly at restore (the
// flat vectors themselves are dtype-agnostic float64 bookkeeping, but the
// continued trajectory would not match the checkpointed one). Version 1
// files (without the dtype word) predate the dtype-generic numeric core
// and are no longer readable; the version check fails with a clear error.
//
// The body is a fixed traversal of the snapshot. Scalars are little-endian
// 64-bit words (float64 as IEEE bits); booleans are single bytes. Every
// float vector is stored as one internal/comm wire frame — the same
// [kind][codec|n][payload] framing the federation's uplinks use — preceded
// by a presence byte (nil vectors are first-class: FedProto prototypes) and
// the frame's byte length. Bulk state (model parameters, optimizer moments,
// in-flight payloads, algorithm vectors) is framed with the codec from the
// header, so checkpoints can be quantized to float32 or int8 for an 2-8×
// size cut; bookkeeping vectors (virtual clock state, metrics history,
// ledger) always use the lossless f64 codec. Quantized checkpoints restore
// and continue fine but forfeit the byte-identical replay contract, exactly
// as a quantized uplink forfeits lossless aggregation.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/fl"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// magic guards against feeding arbitrary files to Unmarshal; the trailing
// byte is the format generation.
const magic = "FEDCKPT1"

// Version is the current checkpoint format version. Version 2 added the
// model-dtype header word; version 3 the node-mode session table and join
// declarations (a ServerNode checkpoint has no client states — client
// models live in other processes — but must preserve the identities it
// issued and the fleet geometry it built its state from); version 4 the
// evaluation RNG stream, the explicit fleet size (a lazy-fleet checkpoint
// holds only the clients that were ever materialized — the builder
// reproduces the untouched rest) and the per-round evaluation sample ids.
const Version = 4

// Every decoded collection length is bounded by the bytes remaining in the
// buffer (each element encodes at least one byte), so a corrupt or hostile
// length field fails cleanly instead of attempting a huge allocation.

// frame tags label the comm frames inside a checkpoint, one per field, so
// a decoder desync surfaces as a tag mismatch instead of silent garbage.
const (
	tagNodeFree uint32 = iota + 1
	tagAway
	tagFlightVec
	tagFlightCounts
	tagPerClient
	tagParams
	tagBuffers
	tagOptVec
	tagAlgoVec
	tagJoinInit
)

// Marshal serializes a snapshot, framing bulk payloads with the given
// codec.
func Marshal(snap *fl.Snapshot, codec comm.Codec) ([]byte, error) {
	e := &encoder{codec: codec}
	e.buf.WriteString(magic)
	e.u32(Version)
	e.u32(uint32(codec))
	e.u32(uint32(snap.DType))

	e.u64(uint64(snap.Kind))
	e.u64(uint64(snap.Round))
	e.f64(snap.Now)
	e.u64(uint64(snap.Seq))
	e.u64(uint64(snap.Applied))
	e.u64(snap.Rng)
	e.u64(snap.EvalRng)
	e.u64(uint64(snap.FleetSize))
	e.vec(tagNodeFree, snap.NodeFree, true)
	e.u64(uint64(len(snap.Idle)))
	for _, ok := range snap.Idle {
		e.bool(ok)
	}
	e.vec(tagAway, snap.Away, true)

	e.u64(uint64(len(snap.Flights)))
	for i := range snap.Flights {
		f := &snap.Flights[i]
		if f.Update == nil {
			return nil, fmt.Errorf("ckpt: flight %d has no update", i)
		}
		e.u64(uint64(f.Client))
		e.u64(uint64(f.Version))
		e.u64(uint64(f.Seq))
		e.f64(f.VTime)
		u := f.Update
		e.f64(u.Scale)
		e.u64(uint64(u.UpFloats))
		e.bool(u.Vecs != nil)
		if u.Vecs != nil {
			e.u64(uint64(len(u.Vecs)))
			for _, v := range u.Vecs {
				e.vec(tagFlightVec, v, false)
			}
		}
		e.bool(u.Counts != nil)
		if u.Counts != nil {
			e.u64(uint64(len(u.Counts)))
			for _, c := range u.Counts {
				e.i64(int64(c))
			}
		}
	}

	e.u64(uint64(len(snap.History)))
	for i := range snap.History {
		m := &snap.History[i]
		e.u64(uint64(m.Round))
		e.u64(uint64(m.LocalEpochs))
		e.f64(m.MeanAcc)
		e.f64(m.StdAcc)
		e.f64(m.SimTime)
		e.i64(m.UpBytes)
		e.i64(m.DownBytes)
		e.vec(tagPerClient, m.PerClient, true)
		e.bool(m.EvalIDs != nil)
		if m.EvalIDs != nil {
			e.u64(uint64(len(m.EvalIDs)))
			for _, id := range m.EvalIDs {
				e.i64(int64(id))
			}
		}
	}

	e.u64(uint64(len(snap.Trace)))
	for _, ev := range snap.Trace {
		e.buf.WriteByte(byte(ev.Kind))
		e.i64(int64(ev.Client))
		e.u64(uint64(ev.Version))
		e.f64(ev.Time)
	}

	e.u32(uint32(snap.Ledger.Codec))
	e.traffic(snap.Ledger.Current)
	e.u64(uint64(len(snap.Ledger.Rounds)))
	for _, r := range snap.Ledger.Rounds {
		e.traffic(r)
	}
	e.u64(uint64(len(snap.Ledger.Clients)))
	for _, c := range snap.Ledger.Clients {
		e.i64(int64(c.Client))
		e.i64(c.Up)
		e.i64(c.Down)
	}

	e.u64(uint64(len(snap.Clients)))
	for i := range snap.Clients {
		c := &snap.Clients[i]
		e.u64(uint64(c.ID))
		e.u64(c.Rng)
		e.vec(tagParams, c.Params, false)
		e.vec(tagBuffers, c.Buffers, false)
		e.u64(uint64(len(c.Opt.Ints)))
		for _, v := range c.Opt.Ints {
			e.i64(v)
		}
		e.u64(uint64(len(c.Opt.Vecs)))
		for _, v := range c.Opt.Vecs {
			e.vec(tagOptVec, v, false)
		}
	}

	e.bool(snap.Algo != nil)
	if snap.Algo != nil {
		e.u64(uint64(len(snap.Algo.Ints)))
		for _, v := range snap.Algo.Ints {
			e.i64(v)
		}
		e.u64(uint64(len(snap.Algo.Vecs)))
		for _, v := range snap.Algo.Vecs {
			e.vec(tagAlgoVec, v, false)
		}
	}

	e.u64(uint64(len(snap.Sessions)))
	for i := range snap.Sessions {
		ss := &snap.Sessions[i]
		e.u64(uint64(ss.ID))
		e.u64(ss.Token)
		e.bool(ss.Churned)
	}
	e.u64(uint64(len(snap.Joins)))
	for i := range snap.Joins {
		j := &snap.Joins[i]
		e.u64(uint64(j.ID))
		e.u64(uint64(j.TrainSize))
		e.u64(uint64(j.FeatDim))
		e.u64(uint64(j.NumClasses))
		e.u64(uint64(j.NumParams))
		e.u64(uint64(j.NumClassifier))
		e.bool(j.Init != nil)
		if j.Init != nil {
			e.u64(uint64(len(j.Init)))
			for _, v := range j.Init {
				e.vec(tagJoinInit, v, false)
			}
		}
	}
	return e.buf.Bytes(), nil
}

// Unmarshal parses a checkpoint produced by Marshal (any codec).
func Unmarshal(b []byte) (*fl.Snapshot, error) {
	d := &decoder{b: b}
	if len(b) < len(magic)+12 {
		return nil, fmt.Errorf("ckpt: %d bytes is shorter than the header", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", b[:len(magic)])
	}
	d.off = len(magic)
	if v := d.u32(); v != Version {
		return nil, fmt.Errorf("ckpt: format version %d, this build reads %d", v, Version)
	}
	codec := comm.Codec(d.u32())
	if codec > comm.I8 {
		return nil, fmt.Errorf("ckpt: unknown bulk codec %d", codec)
	}
	dtype := tensor.DType(d.u32())
	if !dtype.Valid() {
		return nil, fmt.Errorf("ckpt: unknown model dtype %d", uint8(dtype))
	}

	snap := &fl.Snapshot{DType: dtype}
	snap.Kind = fl.SchedulerKind(d.u64())
	snap.Round = int(d.u64())
	snap.Now = d.f64()
	snap.Seq = int(d.u64())
	snap.Applied = int(d.u64())
	snap.Rng = d.u64()
	snap.EvalRng = d.u64()
	snap.FleetSize = int(d.u64())
	snap.NodeFree = d.vec(tagNodeFree)
	nIdle := d.count()
	snap.Idle = make([]bool, nIdle)
	for i := range snap.Idle {
		snap.Idle[i] = d.bool()
	}
	snap.Away = d.vec(tagAway)

	nFlights := d.count()
	for i := 0; i < nFlights && d.err == nil; i++ {
		fs := fl.FlightState{
			Client:  int(d.u64()),
			Version: int(d.u64()),
			Seq:     int(d.u64()),
			VTime:   d.f64(),
		}
		u := &fl.Update{Client: fs.Client}
		u.Scale = d.f64()
		u.UpFloats = int(d.u64())
		if d.bool() {
			nv := d.count()
			u.Vecs = make([][]float64, nv)
			for j := range u.Vecs {
				u.Vecs[j] = d.vec(tagFlightVec)
			}
		}
		if d.bool() {
			nc := d.count()
			u.Counts = make([]int, nc)
			for j := range u.Counts {
				u.Counts[j] = int(d.i64())
			}
		}
		fs.Update = u
		snap.Flights = append(snap.Flights, fs)
	}

	nHist := d.count()
	for i := 0; i < nHist && d.err == nil; i++ {
		m := fl.RoundMetrics{
			Round:       int(d.u64()),
			LocalEpochs: int(d.u64()),
			MeanAcc:     d.f64(),
			StdAcc:      d.f64(),
			SimTime:     d.f64(),
			UpBytes:     d.i64(),
			DownBytes:   d.i64(),
		}
		m.PerClient = d.vec(tagPerClient)
		if d.bool() {
			nIDs := d.count()
			m.EvalIDs = make([]int, 0, nIDs)
			for j := 0; j < nIDs && d.err == nil; j++ {
				m.EvalIDs = append(m.EvalIDs, int(d.i64()))
			}
		}
		snap.History = append(snap.History, m)
	}

	nTrace := d.count()
	for i := 0; i < nTrace && d.err == nil; i++ {
		snap.Trace = append(snap.Trace, fl.TraceEvent{
			Kind:    fl.TraceEventKind(d.u8()),
			Client:  int(d.i64()),
			Version: int(d.u64()),
			Time:    d.f64(),
		})
	}

	snap.Ledger.Codec = comm.Codec(d.u32())
	snap.Ledger.Current = d.traffic()
	nRounds := d.count()
	for i := 0; i < nRounds && d.err == nil; i++ {
		snap.Ledger.Rounds = append(snap.Ledger.Rounds, d.traffic())
	}
	nLC := d.count()
	for i := 0; i < nLC && d.err == nil; i++ {
		snap.Ledger.Clients = append(snap.Ledger.Clients, comm.ClientTraffic{
			Client: int(d.i64()),
			Up:     d.i64(),
			Down:   d.i64(),
		})
	}

	nClients := d.count()
	for i := 0; i < nClients && d.err == nil; i++ {
		cs := fl.ClientState{ID: int(d.u64()), Rng: d.u64()}
		cs.Params = d.vec(tagParams)
		cs.Buffers = d.vec(tagBuffers)
		st := opt.State{}
		nInts := d.count()
		for j := 0; j < nInts && d.err == nil; j++ {
			st.Ints = append(st.Ints, d.i64())
		}
		nVecs := d.count()
		for j := 0; j < nVecs && d.err == nil; j++ {
			st.Vecs = append(st.Vecs, d.vec(tagOptVec))
		}
		cs.Opt = st
		snap.Clients = append(snap.Clients, cs)
	}

	if d.bool() {
		st := &fl.AlgoState{}
		nInts := d.count()
		for j := 0; j < nInts && d.err == nil; j++ {
			st.Ints = append(st.Ints, d.i64())
		}
		nVecs := d.count()
		for j := 0; j < nVecs && d.err == nil; j++ {
			st.Vecs = append(st.Vecs, d.vec(tagAlgoVec))
		}
		snap.Algo = st
	}

	nSessions := d.count()
	for i := 0; i < nSessions && d.err == nil; i++ {
		snap.Sessions = append(snap.Sessions, fl.SessionState{
			ID:      int(d.u64()),
			Token:   d.u64(),
			Churned: d.bool(),
		})
	}
	nJoins := d.count()
	for i := 0; i < nJoins && d.err == nil; i++ {
		j := fl.WireJoin{
			ID:            int(d.u64()),
			TrainSize:     int(d.u64()),
			FeatDim:       int(d.u64()),
			NumClasses:    int(d.u64()),
			NumParams:     int(d.u64()),
			NumClassifier: int(d.u64()),
		}
		if d.bool() {
			nv := d.count()
			j.Init = make([][]float64, nv)
			for k := range j.Init {
				j.Init[k] = d.vec(tagJoinInit)
			}
		}
		snap.Joins = append(snap.Joins, j)
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes", len(d.b)-d.off)
	}
	return snap, nil
}

// encoder writes the body; its Write targets never fail.
type encoder struct {
	buf   bytes.Buffer
	codec comm.Codec
}

func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bool(v bool) {
	if v {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

// vec writes a presence byte and, when present, a comm frame. Bookkeeping
// vectors pass lossless=true to pin the f64 codec.
func (e *encoder) vec(tag uint32, v []float64, lossless bool) {
	if v == nil {
		e.buf.WriteByte(0)
		return
	}
	e.buf.WriteByte(1)
	codec := e.codec
	if lossless {
		codec = comm.F64
	}
	frame := comm.MarshalAs(codec, tag, v)
	e.u64(uint64(len(frame)))
	e.buf.Write(frame)
}

func (e *encoder) traffic(t comm.RoundTraffic) {
	e.i64(int64(t.Round))
	e.i64(t.UpBytes)
	e.i64(t.DownBytes)
	e.i64(int64(t.Messages))
}

// decoder walks the body, latching the first error.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated at byte %d (want %d more)", d.off, n)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a collection length and bounds it by the remaining bytes:
// every encoded element occupies at least one byte, so any larger count is
// corrupt and must not reach an allocation.
func (d *decoder) count() int {
	v := d.u64()
	if v > uint64(len(d.b)-d.off) {
		d.fail("count %d exceeds the %d remaining bytes", v, len(d.b)-d.off)
		return 0
	}
	return int(v)
}

// vec reads a presence byte and, when present, one comm frame with the
// expected tag.
func (d *decoder) vec(tag uint32) []float64 {
	if !d.bool() {
		return nil
	}
	n := d.count()
	frame := d.take(n)
	if frame == nil {
		return nil
	}
	_, kind, payload, err := comm.Decode(frame)
	if err != nil {
		d.fail("frame for tag %d: %v", tag, err)
		return nil
	}
	if kind != tag {
		d.fail("frame tag %d where %d was expected", kind, tag)
		return nil
	}
	return payload
}

func (d *decoder) traffic() comm.RoundTraffic {
	return comm.RoundTraffic{
		Round:     int(d.i64()),
		UpBytes:   d.i64(),
		DownBytes: d.i64(),
		Messages:  int(d.i64()),
	}
}
