// Package loss implements the objective functions of the FedClassAvg
// reproduction: softmax cross-entropy, the two-view supervised contrastive
// loss of Khosla et al. (2020) used for local representation learning, the
// L2 proximal regularizer that keeps client classifiers near the global
// classifier, and the temperature-scaled KL distillation loss used by the
// KT-pFL baseline. Every function returns both the scalar loss and the
// gradient with respect to its input so layers can stay autodiff-free.
//
// Losses are dtype-generic: gradients come back in the input activations'
// dtype (so the backward pass stays on the model's fast path), while scalar
// loss values are always float64 bookkeeping. Transcendentals are evaluated
// through the float64 math package and narrowed, which keeps the float64
// instantiation bit-identical to the historical implementation.
package loss

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// CrossEntropy computes mean softmax cross-entropy over a batch of logits
// [N, C] with integer labels, returning the loss and dL/dlogits.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n := logits.Rows()
	if len(labels) != n {
		panic("loss: CrossEntropy label count mismatch")
	}
	grad := tensor.NewOf(logits.DT, n, logits.Cols())
	if logits.DT.Backing() == tensor.F32 {
		return crossEntropy(tensor.Of[float32](logits), tensor.Of[float32](grad), labels, logits.Cols()), grad
	}
	return crossEntropy(logits.Data, grad.Data, labels, logits.Cols()), grad
}

func crossEntropy[F tensor.Float](logits, grad []F, labels []int, c int) float64 {
	n := len(labels)
	var total float64
	inv := 1.0 / float64(n)
	invF := F(inv)
	for i := 0; i < n; i++ {
		row := logits[i*c : (i+1)*c]
		lse := tensor.LogSumExpOf(row)
		y := labels[i]
		total += float64(lse - row[y])
		grow := grad[i*c : (i+1)*c]
		for j := range row {
			p := F(math.Exp(float64(row[j] - lse)))
			grow[j] = p * invF
		}
		grow[y] -= invF
	}
	return total * inv
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i := range labels {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// SupConOptions configures the supervised contrastive loss.
type SupConOptions struct {
	// Temperature scales similarities; the paper (following Khosla et al.)
	// uses small values around 0.07–0.5.
	Temperature float64
}

// SupCon computes the supervised contrastive loss over two augmented views.
// features must be [2N, D]: rows 0..N-1 are view one, rows N..2N-1 view two,
// and row i and row i+N share labels[i]. The features need not be
// normalized; L2 normalization is part of the loss (and its backward pass).
// It returns the loss and dL/dfeatures of shape [2N, D].
//
// For anchor i with positives P(i) = {j ≠ i : label_j = label_i}:
//
//	L_i = log Σ_{a≠i} exp(z_i·z_a/τ) − (1/|P(i)|) Σ_{p∈P(i)} z_i·z_p/τ
//
// and the total loss is the mean over all 2N anchors. With two views every
// anchor has at least one positive (its sibling view), so |P(i)| ≥ 1.
func SupCon(features *tensor.Tensor, labels []int, optsIn ...SupConOptions) (float64, *tensor.Tensor) {
	opts := SupConOptions{Temperature: 0.1}
	if len(optsIn) > 0 && optsIn[0].Temperature > 0 {
		opts = optsIn[0]
	}
	m := features.Rows()
	if m%2 != 0 || m/2 != len(labels) {
		panic("loss: SupCon expects [2N, D] features and N labels")
	}
	df := tensor.NewOf(features.DT, m, features.Cols())
	var lossVal float64
	if features.DT.Backing() == tensor.F32 {
		lossVal = supCon[float32](features, df, labels, opts.Temperature)
	} else {
		lossVal = supCon[float64](features, df, labels, opts.Temperature)
	}
	return lossVal, df
}

func supCon[F tensor.Float](features, df *tensor.Tensor, labels []int, tau float64) float64 {
	dt := features.DT
	m := features.Rows()
	d := features.Cols()
	n := m / 2

	// Normalize a pooled copy of the features, remembering norms for the
	// backward pass through the normalization. All O(m²) intermediates come
	// from the tensor pool and go back at the end, so per-batch contrastive
	// steps allocate only the returned gradient in steady state.
	z := tensor.GetTensorOf(dt, m, d)
	defer tensor.PutTensor(z)
	z.CopyFrom(features)
	norms := z.NormalizeRowsInPlace(1e-12)

	full := make([]int, m)
	for i := 0; i < n; i++ {
		full[i] = labels[i]
		full[i+n] = labels[i]
	}

	// Pairwise scaled similarities s_ij = z_i·z_j/τ.
	sim := tensor.GetTensorOf(dt, m, m)
	defer tensor.PutTensor(sim)
	tensor.MatMulABTInto(sim, z, z)
	sim.ScaleInPlace(1 / tau)
	simd := tensor.Of[F](sim)

	// G_ia = softmax over a≠i of s_ia, minus 1/|P(i)| for positives.
	g := tensor.GetTensorOf(dt, m, m)
	defer tensor.PutTensor(g)
	gd := tensor.Of[F](g)
	var total float64
	for i := 0; i < m; i++ {
		row := simd[i*m : (i+1)*m]
		// log-sum-exp over a ≠ i
		maxV := F(math.Inf(-1))
		for a := 0; a < m; a++ {
			if a != i && row[a] > maxV {
				maxV = row[a]
			}
		}
		var sum F
		for a := 0; a < m; a++ {
			if a != i {
				sum += F(math.Exp(float64(row[a] - maxV)))
			}
		}
		lse := maxV + F(math.Log(float64(sum)))
		nPos := 0
		var posSum F
		for a := 0; a < m; a++ {
			if a != i && full[a] == full[i] {
				nPos++
				posSum += row[a]
			}
		}
		if nPos == 0 {
			continue // cannot happen with two views, but stay safe
		}
		total += float64(lse - posSum/F(float64(nPos)))
		grow := gd[i*m : (i+1)*m]
		invPos := F(1.0 / float64(nPos))
		for a := 0; a < m; a++ {
			if a == i {
				continue
			}
			p := F(math.Exp(float64(row[a] - lse)))
			if full[a] == full[i] {
				p -= invPos
			}
			grow[a] = p
		}
	}
	lossVal := total / float64(m)

	// dL/dz_i = (1/(Mτ)) Σ_a (G_ia + G_ai)·z_a
	scale := F(1.0 / (float64(m) * tau))
	gSym := tensor.GetTensorOf(dt, m, m)
	defer tensor.PutTensor(gSym)
	gSymd := tensor.Of[F](gSym)
	for i := 0; i < m; i++ {
		for a := 0; a < m; a++ {
			gSymd[i*m+a] = (gd[i*m+a] + gd[a*m+i]) * scale
		}
	}
	dz := tensor.GetTensorOf(dt, m, d)
	defer tensor.PutTensor(dz)
	tensor.MatMulInto(dz, gSym, z)

	// Backprop through z = f/‖f‖: df = (dz − z·(z·dz)) / ‖f‖.
	zd, dzd, dfd := tensor.Of[F](z), tensor.Of[F](dz), tensor.Of[F](df)
	for i := 0; i < m; i++ {
		zi := zd[i*d : (i+1)*d]
		dzi := dzd[i*d : (i+1)*d]
		var dot F
		for j := 0; j < d; j++ {
			dot += zi[j] * dzi[j]
		}
		inv := F(1 / norms[i])
		dfi := dfd[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			dfi[j] = (dzi[j] - zi[j]*dot) * inv
		}
	}
	return lossVal
}

// Proximal adds the gradient of ρ·‖w − w_global‖² to the parameter
// gradients and returns the penalty value. globalFlat must have the layout
// produced by nn.FlattenParams on the same parameter list; the difference
// is computed in float64 bookkeeping and the gradient contribution narrows
// to the parameter dtype.
func Proximal(params []*nn.Param, globalFlat []float64, rho float64) float64 {
	if rho == 0 {
		return 0
	}
	var penalty float64
	off := 0
	for _, p := range params {
		// The accumulator threads through every parameter so the summation
		// order (and thus the float64 result) matches the historical
		// single-loop implementation bit for bit.
		if p.Value.DT.Backing() == tensor.F32 {
			penalty = proximalParam(tensor.Of[float32](p.Value), tensor.Of[float32](p.Grad), globalFlat[off:], rho, penalty)
		} else {
			penalty = proximalParam(p.Value.Data, p.Grad.Data, globalFlat[off:], rho, penalty)
		}
		off += p.Value.Size()
	}
	return rho * penalty
}

func proximalParam[F tensor.Float](w, g []F, globalFlat []float64, rho, penalty float64) float64 {
	for j := range w {
		d := float64(w[j]) - globalFlat[j]
		penalty += d * d
		g[j] += F(2 * rho * d)
	}
	return penalty
}

// KLDistill computes the temperature-scaled distillation loss
// T²·KL(teacher ‖ student) between teacher probabilities [N, C] and student
// logits [N, C], returning the loss and dL/d(student logits). The T² factor
// keeps gradient magnitudes comparable across temperatures (Hinton et al.).
func KLDistill(studentLogits, teacherProbs *tensor.Tensor, temperature float64) (float64, *tensor.Tensor) {
	n, c := studentLogits.Rows(), studentLogits.Cols()
	if teacherProbs.Rows() != n || teacherProbs.Cols() != c {
		panic("loss: KLDistill shape mismatch")
	}
	grad := tensor.NewOf(studentLogits.DT, n, c)
	if studentLogits.DT.Backing() == tensor.F32 {
		return klDistill(tensor.Of[float32](studentLogits), tensor.Of[float32](teacherProbs),
			tensor.Of[float32](grad), n, c, temperature), grad
	}
	return klDistill(studentLogits.Data, tensor.Of[float64](teacherProbs), grad.Data, n, c, temperature), grad
}

func klDistill[F tensor.Float](student, teacher, grad []F, n, c int, temperature float64) float64 {
	t := temperature
	var total float64
	inv := 1.0 / float64(n)
	scaled := make([]F, c)
	for i := 0; i < n; i++ {
		srow := student[i*c : (i+1)*c]
		trow := teacher[i*c : (i+1)*c]
		for j := range srow {
			scaled[j] = srow[j] / F(t)
		}
		lse := tensor.LogSumExpOf(scaled)
		grow := grad[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			logPs := scaled[j] - lse
			ps := math.Exp(float64(logPs))
			pt := float64(trow[j])
			if pt > 0 {
				total += pt * (math.Log(pt) - float64(logPs))
			}
			// d(T²·KL)/dlogit = T·(ps − pt), averaged over the batch.
			grow[j] = F(t * (ps - pt) * inv)
		}
	}
	return total * t * t * inv
}

// SoftmaxWithTemperature returns softmax(logits/T) row-wise as a new tensor
// (in the logits' dtype).
func SoftmaxWithTemperature(logits *tensor.Tensor, t float64) *tensor.Tensor {
	out := logits.Clone()
	out.ScaleInPlace(1 / t)
	out.SoftmaxRowsInPlace()
	return out
}
