// Package loss implements the objective functions of the FedClassAvg
// reproduction: softmax cross-entropy, the two-view supervised contrastive
// loss of Khosla et al. (2020) used for local representation learning, the
// L2 proximal regularizer that keeps client classifiers near the global
// classifier, and the temperature-scaled KL distillation loss used by the
// KT-pFL baseline. Every function returns both the scalar loss and the
// gradient with respect to its input so layers can stay autodiff-free.
package loss

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// CrossEntropy computes mean softmax cross-entropy over a batch of logits
// [N, C] with integer labels, returning the loss and dL/dlogits.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := logits.Rows(), logits.Cols()
	if len(labels) != n {
		panic("loss: CrossEntropy label count mismatch")
	}
	grad := tensor.New(n, c)
	var total float64
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		lse := tensor.LogSumExpRow(row)
		y := labels[i]
		total += lse - row[y]
		grow := grad.Row(i)
		for j := range row {
			p := math.Exp(row[j] - lse)
			grow[j] = p * inv
		}
		grow[y] -= inv
	}
	return total * inv, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i := range labels {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// SupConOptions configures the supervised contrastive loss.
type SupConOptions struct {
	// Temperature scales similarities; the paper (following Khosla et al.)
	// uses small values around 0.07–0.5.
	Temperature float64
}

// SupCon computes the supervised contrastive loss over two augmented views.
// features must be [2N, D]: rows 0..N-1 are view one, rows N..2N-1 view two,
// and row i and row i+N share labels[i]. The features need not be
// normalized; L2 normalization is part of the loss (and its backward pass).
// It returns the loss and dL/dfeatures of shape [2N, D].
//
// For anchor i with positives P(i) = {j ≠ i : label_j = label_i}:
//
//	L_i = log Σ_{a≠i} exp(z_i·z_a/τ) − (1/|P(i)|) Σ_{p∈P(i)} z_i·z_p/τ
//
// and the total loss is the mean over all 2N anchors. With two views every
// anchor has at least one positive (its sibling view), so |P(i)| ≥ 1.
func SupCon(features *tensor.Tensor, labels []int, optsIn ...SupConOptions) (float64, *tensor.Tensor) {
	opts := SupConOptions{Temperature: 0.1}
	if len(optsIn) > 0 && optsIn[0].Temperature > 0 {
		opts = optsIn[0]
	}
	m := features.Rows()
	d := features.Cols()
	if m%2 != 0 || m/2 != len(labels) {
		panic("loss: SupCon expects [2N, D] features and N labels")
	}
	n := m / 2
	tau := opts.Temperature

	// Normalize a pooled copy of the features, remembering norms for the
	// backward pass through the normalization. All O(m²) intermediates come
	// from the tensor pool and go back at the end, so per-batch contrastive
	// steps allocate only the returned gradient in steady state.
	z := tensor.GetTensor(m, d)
	defer tensor.PutTensor(z)
	z.CopyFrom(features)
	norms := z.NormalizeRowsInPlace(1e-12)

	full := make([]int, m)
	for i := 0; i < n; i++ {
		full[i] = labels[i]
		full[i+n] = labels[i]
	}

	// Pairwise scaled similarities s_ij = z_i·z_j/τ.
	sim := tensor.GetTensor(m, m)
	defer tensor.PutTensor(sim)
	tensor.MatMulABTInto(sim, z, z)
	sim.ScaleInPlace(1 / tau)

	// G_ia = softmax over a≠i of s_ia, minus 1/|P(i)| for positives.
	g := tensor.GetTensor(m, m)
	defer tensor.PutTensor(g)
	var total float64
	for i := 0; i < m; i++ {
		row := sim.Row(i)
		// log-sum-exp over a ≠ i
		maxV := math.Inf(-1)
		for a := 0; a < m; a++ {
			if a != i && row[a] > maxV {
				maxV = row[a]
			}
		}
		var sum float64
		for a := 0; a < m; a++ {
			if a != i {
				sum += math.Exp(row[a] - maxV)
			}
		}
		lse := maxV + math.Log(sum)
		nPos := 0
		var posSum float64
		for a := 0; a < m; a++ {
			if a != i && full[a] == full[i] {
				nPos++
				posSum += row[a]
			}
		}
		if nPos == 0 {
			continue // cannot happen with two views, but stay safe
		}
		total += lse - posSum/float64(nPos)
		grow := g.Row(i)
		invPos := 1.0 / float64(nPos)
		for a := 0; a < m; a++ {
			if a == i {
				continue
			}
			p := math.Exp(row[a] - lse)
			if full[a] == full[i] {
				p -= invPos
			}
			grow[a] = p
		}
	}
	lossVal := total / float64(m)

	// dL/dz_i = (1/(Mτ)) Σ_a (G_ia + G_ai)·z_a
	scale := 1.0 / (float64(m) * tau)
	gSym := tensor.GetTensor(m, m)
	defer tensor.PutTensor(gSym)
	for i := 0; i < m; i++ {
		for a := 0; a < m; a++ {
			gSym.Set(i, a, (g.At(i, a)+g.At(a, i))*scale)
		}
	}
	dz := tensor.GetTensor(m, d)
	defer tensor.PutTensor(dz)
	tensor.MatMulInto(dz, gSym, z)

	// Backprop through z = f/‖f‖: df = (dz − z·(z·dz)) / ‖f‖.
	df := tensor.New(m, d)
	for i := 0; i < m; i++ {
		zi := z.Row(i)
		dzi := dz.Row(i)
		var dot float64
		for j := 0; j < d; j++ {
			dot += zi[j] * dzi[j]
		}
		inv := 1 / norms[i]
		dfi := df.Row(i)
		for j := 0; j < d; j++ {
			dfi[j] = (dzi[j] - zi[j]*dot) * inv
		}
	}
	return lossVal, df
}

// Proximal adds the gradient of ρ·‖w − w_global‖² to the parameter
// gradients and returns the penalty value. globalFlat must have the layout
// produced by nn.FlattenParams on the same parameter list.
func Proximal(params []*nn.Param, globalFlat []float64, rho float64) float64 {
	if rho == 0 {
		return 0
	}
	var penalty float64
	off := 0
	for _, p := range params {
		w, g := p.Value.Data, p.Grad.Data
		for j := range w {
			d := w[j] - globalFlat[off+j]
			penalty += d * d
			g[j] += 2 * rho * d
		}
		off += len(w)
	}
	return rho * penalty
}

// KLDistill computes the temperature-scaled distillation loss
// T²·KL(teacher ‖ student) between teacher probabilities [N, C] and student
// logits [N, C], returning the loss and dL/d(student logits). The T² factor
// keeps gradient magnitudes comparable across temperatures (Hinton et al.).
func KLDistill(studentLogits, teacherProbs *tensor.Tensor, temperature float64) (float64, *tensor.Tensor) {
	n, c := studentLogits.Rows(), studentLogits.Cols()
	if teacherProbs.Rows() != n || teacherProbs.Cols() != c {
		panic("loss: KLDistill shape mismatch")
	}
	t := temperature
	grad := tensor.New(n, c)
	var total float64
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		srow := studentLogits.Row(i)
		trow := teacherProbs.Row(i)
		scaled := make([]float64, c)
		for j := range srow {
			scaled[j] = srow[j] / t
		}
		lse := tensor.LogSumExpRow(scaled)
		grow := grad.Row(i)
		for j := 0; j < c; j++ {
			logPs := scaled[j] - lse
			ps := math.Exp(logPs)
			pt := trow[j]
			if pt > 0 {
				total += pt * (math.Log(pt) - logPs)
			}
			// d(T²·KL)/dlogit = T·(ps − pt), averaged over the batch.
			grow[j] = t * (ps - pt) * inv
		}
	}
	return total * t * t * inv, grad
}

// SoftmaxWithTemperature returns softmax(logits/T) row-wise as a new tensor.
func SoftmaxWithTemperature(logits *tensor.Tensor, t float64) *tensor.Tensor {
	out := logits.Clone()
	out.ScaleInPlace(1 / t)
	out.SoftmaxRowsInPlace()
	return out
}
