package loss

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func numGrad(x *tensor.Tensor, j int, f func() float64) float64 {
	const eps = 1e-6
	orig := x.Data[j]
	x.Data[j] = orig + eps
	up := f()
	x.Data[j] = orig - eps
	down := f()
	x.Data[j] = orig
	return (up - down) / (2 * eps)
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.New(5, 4)
	logits.FillRandn(rng, 1.5)
	labels := []int{0, 3, 2, 1, 3}
	_, grad := CrossEntropy(logits, labels)
	for j := 0; j < logits.Size(); j++ {
		want := numGrad(logits, j, func() float64 {
			l, _ := CrossEntropy(logits, labels)
			return l
		})
		if math.Abs(grad.Data[j]-want) > 1e-6 {
			t.Fatalf("dlogits[%d]: analytic %g vs numeric %g", j, grad.Data[j], want)
		}
	}
}

func TestCrossEntropyValue(t *testing.T) {
	// Uniform logits must give loss log(C).
	logits := tensor.New(3, 4)
	l, _ := CrossEntropy(logits, []int{0, 1, 2})
	if math.Abs(l-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform CE = %g, want log 4 = %g", l, math.Log(4))
	}
	// A huge correct logit drives the loss to ~0.
	conf := tensor.New(1, 3)
	conf.Set(0, 1, 50)
	l2, _ := CrossEntropy(conf, []int{1})
	if l2 > 1e-10 {
		t.Fatalf("confident CE = %g, want ~0", l2)
	}
}

func TestCrossEntropyStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0}, 1, 3)
	l, grad := CrossEntropy(logits, []int{0})
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("CE overflowed: %g", l)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("CE gradient NaN")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		2, 1, 0,
		0, 5, 1,
		1, 0, 3,
	}, 3, 3)
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g, want 2/3", got)
	}
	if got := Accuracy(tensor.New(0, 3), nil); got != 0 {
		t.Fatalf("empty accuracy = %g, want 0", got)
	}
}

func TestSupConGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	features := tensor.New(8, 5) // 2N=8, N=4
	features.FillRandn(rng, 1)
	labels := []int{0, 1, 0, 2}
	_, grad := SupCon(features, labels, SupConOptions{Temperature: 0.3})
	for j := 0; j < features.Size(); j++ {
		want := numGrad(features, j, func() float64 {
			l, _ := SupCon(features, labels, SupConOptions{Temperature: 0.3})
			return l
		})
		if math.Abs(grad.Data[j]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("dfeat[%d]: analytic %g vs numeric %g", j, grad.Data[j], want)
		}
	}
}

func TestSupConPullsPositivesTogether(t *testing.T) {
	// Two classes, features almost aligned within class: the loss must be
	// lower than for shuffled labels.
	rng := rand.New(rand.NewSource(3))
	feats := tensor.New(8, 4)
	base := [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}}
	labels := []int{0, 1, 0, 1}
	for i := 0; i < 8; i++ {
		cls := labels[i%4]
		for j := 0; j < 4; j++ {
			feats.Set(i, j, base[cls][j]+0.05*rng.NormFloat64())
		}
	}
	aligned, _ := SupCon(feats, labels)
	mis, _ := SupCon(feats, []int{0, 0, 1, 1})
	if aligned >= mis {
		t.Fatalf("aligned loss %g should beat misaligned %g", aligned, mis)
	}
}

func TestSupConScaleInvariance(t *testing.T) {
	// SupCon normalizes features, so scaling all features must not change
	// the loss value.
	rng := rand.New(rand.NewSource(4))
	f1 := tensor.New(6, 3)
	f1.FillRandn(rng, 1)
	labels := []int{0, 1, 2}
	l1, _ := SupCon(f1, labels)
	f2 := tensor.Scale(f1, 7.3)
	l2, _ := SupCon(f2, labels)
	if math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("scale changed SupCon: %g vs %g", l1, l2)
	}
}

func TestProximalGradientAndValue(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := &nn.Param{Name: "w", Value: tensor.New(4), Grad: tensor.New(4)}
	p.Value.FillRandn(rng, 1)
	global := []float64{0.1, -0.2, 0.3, 0}
	rho := 0.25
	penalty := Proximal([]*nn.Param{p}, global, rho)
	var want float64
	for j, g := range global {
		d := p.Value.Data[j] - g
		want += d * d
		if gotG, wantG := p.Grad.Data[j], 2*rho*d; math.Abs(gotG-wantG) > 1e-12 {
			t.Fatalf("prox grad[%d] = %g, want %g", j, gotG, wantG)
		}
	}
	if math.Abs(penalty-rho*want) > 1e-12 {
		t.Fatalf("prox penalty = %g, want %g", penalty, rho*want)
	}
	// rho=0 must be a no-op.
	before := p.Grad.Clone()
	if got := Proximal([]*nn.Param{p}, global, 0); got != 0 {
		t.Fatalf("rho=0 penalty = %g", got)
	}
	if !tensor.ApproxEqual(before, p.Grad, 0) {
		t.Fatal("rho=0 modified gradients")
	}
}

func TestKLDistillGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := tensor.New(4, 5)
	logits.FillRandn(rng, 1)
	teacher := tensor.New(4, 5)
	teacher.FillUniform(rng, 0.05, 1)
	for i := 0; i < 4; i++ {
		row := teacher.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		for j := range row {
			row[j] /= s
		}
	}
	const temp = 2.0
	_, grad := KLDistill(logits, teacher, temp)
	for j := 0; j < logits.Size(); j++ {
		want := numGrad(logits, j, func() float64 {
			l, _ := KLDistill(logits, teacher, temp)
			return l
		})
		if math.Abs(grad.Data[j]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("distill dlogits[%d]: analytic %g vs numeric %g", j, grad.Data[j], want)
		}
	}
}

func TestKLDistillZeroWhenMatched(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 3}, 1, 3)
	teacher := SoftmaxWithTemperature(logits, 2.0)
	l, grad := KLDistill(logits, teacher, 2.0)
	if l > 1e-12 {
		t.Fatalf("matched distill loss = %g, want 0", l)
	}
	if grad.MaxAbs() > 1e-12 {
		t.Fatalf("matched distill grad max %g, want 0", grad.MaxAbs())
	}
}

func TestSoftmaxWithTemperature(t *testing.T) {
	logits := tensor.FromSlice([]float64{2, 0, -2}, 1, 3)
	p := SoftmaxWithTemperature(logits, 1)
	var s float64
	for _, v := range p.Data {
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("softmax rows must sum to 1, got %g", s)
	}
	// Higher temperature flattens the distribution.
	pHot := SoftmaxWithTemperature(logits, 10)
	if pHot.Data[0]-pHot.Data[2] >= p.Data[0]-p.Data[2] {
		t.Fatal("high temperature should flatten the softmax")
	}
}
