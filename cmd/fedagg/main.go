// Command fedagg runs one edge aggregator of a 2-level federation tree:
// it listens for its contiguous slice of the fedclient fleet (clients
// [lo, hi) as determined by -agg/-aggregators/-clients), joins the
// fedserver upstream on the subtree's behalf, and relays every round —
// answering each batched dispatch with either a pre-reduced aggregate
// (exact, for associative algorithms) or its children's raw updates
// bundled unreduced (the passthrough for KT-pFL). Downstream the
// aggregator behaves exactly like a fedserver — joins, heartbeats,
// reconnect windows, churn — and upstream it behaves exactly like a
// fedclient, so neither side needs to know it is talking to a middle
// layer.
//
// The -dataset/-method/-seed/-featdim/-clients flags must match the
// server's and the clients': the tree is a pure function of them, which
// is what lets N processes reconstruct a consistent federation with
// nothing shared but flags.
//
// Fault tolerance: a fedagg that loses its uplink redials with its
// session token for up to -reconnect. A fedagg that dies outright is
// churned by the server after its reconnect window — together with its
// whole subtree; aggregators deliberately keep no checkpoint state
// (DESIGN.md §11).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:0", "TCP address to listen on for this subtree's clients (port 0 picks a free port, printed on stdout)")
		upstream    = flag.String("upstream", "", "fedserver TCP address (required)")
		agg         = flag.Int("agg", -1, "this aggregator's index, in [0, -aggregators)")
		aggregators = flag.Int("aggregators", 0, "total aggregator count (must match the server's -aggregators)")
		clients     = flag.Int("clients", 0, "total fleet size (0 = scale default; must match the server)")
		dataset     = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		method      = flag.String("method", experiments.MethodProposed, "method (must match the server)")
		seed        = flag.Int64("seed", 1, "experiment seed (must match the server)")
		featDim     = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
		codecName   = flag.String("codec", "f64", "wire codec: f64 | f32 | i8 | bf16 | topk (must match the server)")
		topk        = flag.Float64("topk", 0, "top-k upload fraction, in (0, 1) (must match the server)")
		delta       = flag.Bool("delta", false, "delta-framed weight uploads (must match the server)")
		dtypeName   = flag.String("dtype", "f64", "model element type: f64 | f32")
		heartbeat   = flag.Duration("heartbeat", fl.DefaultHeartbeat, "downstream heartbeat interval (this subtree's clients echo it)")
		deadAfter   = flag.Duration("dead", 0, "declare a silent child connection dead after this long (0 = 5x heartbeat)")
		window      = flag.Duration("window", fl.DefaultReconnectWindow, "how long a dead child may take to reconnect before it is churned")
		dialBudget  = flag.Duration("dial-timeout", 30*time.Second, "how long to keep retrying the first upstream dial while the server comes up")
		reconnect   = flag.Duration("reconnect", 30*time.Second, "how long to keep redialing upstream after a mid-run disconnect")
		preName     = flag.String("prereduce", "auto", "pre-reduction policy: auto | force | off")
	)
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fedagg: "+format+"\n", args...)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 {
		usage("unexpected arguments %q", strings.Join(args, " "))
	}
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Seed = *seed
	if *clients < 0 {
		usage("-clients must be >= 0, got %d", *clients)
	}
	if *clients > 0 {
		s.Clients = *clients
	}
	if *featDim < 0 {
		usage("-featdim must be >= 0, got %d", *featDim)
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}
	if *upstream == "" {
		usage("-upstream is required (the fedserver address this aggregator reports to)")
	}
	if *aggregators < 1 || *aggregators > s.Clients {
		usage("-aggregators must be in [1, %d (clients)], got %d", s.Clients, *aggregators)
	}
	if *agg < 0 || *agg >= *aggregators {
		usage("-agg must be in [0, %d (aggregators)), got %d", *aggregators, *agg)
	}
	if *heartbeat <= 0 {
		usage("-heartbeat must be > 0, got %v", *heartbeat)
	}
	if *deadAfter < 0 {
		usage("-dead must be >= 0, got %v", *deadAfter)
	}
	if *window <= 0 {
		usage("-window must be > 0, got %v", *window)
	}
	if *dialBudget < 0 {
		usage("-dial-timeout must be >= 0, got %v", *dialBudget)
	}
	if *reconnect <= 0 {
		usage("-reconnect must be > 0, got %v", *reconnect)
	}
	name, err := experiments.ParseDataset(*dataset)
	if err != nil {
		usage("%v", err)
	}
	spec, err := comm.ParseSpec(*codecName, *topk, *delta)
	if err != nil {
		usage("%v", err)
	}
	dtype, err := tensor.ParseDType(*dtypeName)
	if err != nil {
		usage("%v", err)
	}
	s.DType = dtype
	pre, err := fl.ParsePreReduce(*preName)
	if err != nil {
		usage("%v", err)
	}
	algo, err := experiments.WireAlgorithmFor(*method, name, s)
	if err != nil {
		usage("%v", err)
	}
	// -prereduce force on a non-associative algorithm can never produce a
	// sound reduction; refuse at startup rather than mid-round.
	if err := fl.CheckPreReduce(algo, pre); err != nil {
		usage("%v", err)
	}

	tr := transport.NewTCP(transport.Options{DType: dtype, Spec: spec})
	ln, err := tr.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedagg: %v\n", err)
		os.Exit(1)
	}
	// The bound address goes out first (and unbuffered) so orchestration —
	// scripts, the CI tree test — can listen on :0 and scrape the port.
	fmt.Printf("# fedagg listening on %s\n", ln.Addr())
	bounds := fl.TreeSplit(s.Clients, *aggregators)
	fmt.Printf("# fedagg %d/%d: clients [%d, %d) of %d, upstream %s, prereduce %s\n",
		*agg, *aggregators, bounds[*agg], bounds[*agg+1], s.Clients, *upstream, pre)

	ctx := context.Background()
	node := fl.NewAggregatorNode(algo, fl.AggregatorConfig{
		Index:           *agg,
		Aggregators:     *aggregators,
		Clients:         s.Clients,
		Codec:           spec.Value,
		TopK:            spec.Frac,
		Delta:           spec.Delta,
		Seed:            *seed*1000 + 500 + int64(*agg),
		Heartbeat:       *heartbeat,
		DeadAfter:       *deadAfter,
		ReconnectWindow: *window,
		PreReduce:       pre,
		Dialer: func(ctx context.Context, token uint64) (transport.Conn, error) {
			// First dial waits out server startup for -dial-timeout;
			// mid-run redials (token != 0) get the -reconnect budget.
			budget := *dialBudget
			if token != 0 {
				budget = *reconnect
			}
			return transport.DialRetry(ctx, tr, *upstream, transport.RetryOptions{
				Budget: budget,
				Seed:   *seed*1000 + 500 + int64(*agg),
				Token:  token,
			})
		},
	})
	if err := node.Run(ctx, ln); err != nil {
		fmt.Fprintf(os.Stderr, "fedagg: %v\n", err)
		os.Exit(1)
	}
	st := node.Stats
	fmt.Printf("# faults: reconnects=%d disconnects=%d churned=%d resends=%d\n",
		st.Reconnects, st.Disconnects, st.Churned, st.Resends)
	fmt.Printf("# fedagg %d: federation complete\n", *agg)
}
