package main

import (
	"bufio"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

// Flag interlocks: every invalid topology or policy combination must be
// refused at startup with exit 2 and a message naming the offending flag,
// before the aggregator binds anything upstream. (The positive path — a
// full 2-level tree — runs in cmd/fedserver's multi-process test and in
// CI's tree job; a lone fedagg cannot complete a federation.)
func TestFedaggInterlocks(t *testing.T) {
	common := []string{"-dataset", "fashion", "-clients", "6", "-featdim", "16", "-upstream", "127.0.0.1:1"}
	rejects := []struct {
		args []string
		want string
	}{
		{[]string{"-dataset", "fashion", "-clients", "6", "-agg", "0", "-aggregators", "2"}, "-upstream"},
		{append(append([]string(nil), common...), "-agg", "0"), "-aggregators"},
		{append(append([]string(nil), common...), "-agg", "0", "-aggregators", "7"), "-aggregators"},
		{append(append([]string(nil), common...), "-aggregators", "2"), "-agg"},
		{append(append([]string(nil), common...), "-agg", "2", "-aggregators", "2"), "-agg"},
		{append(append([]string(nil), common...), "-agg", "-1", "-aggregators", "2"), "-agg"},
		{append(append([]string(nil), common...), "-agg", "0", "-aggregators", "2", "-prereduce", "sometimes"), "prereduce"},
		{append(append([]string(nil), common...), "-agg", "0", "-aggregators", "2", "-method", "KT-pFL", "-prereduce", "force"), "pre-reduction"},
		{append(append([]string(nil), common...), "-agg", "0", "-aggregators", "2", "-window", "0s"), "-window"},
		{append(append([]string(nil), common...), "-agg", "0", "-aggregators", "2", "-reconnect", "0s"), "-reconnect"},
	}
	for _, tc := range rejects {
		out := cmdtest.RunErr(t, 2, nil, tc.args...)
		if !strings.Contains(out, tc.want) {
			t.Fatalf("rejection for %v should mention %q:\n%s", tc.args, tc.want, out)
		}
	}
}

// KT-pFL under the default auto policy must start (passthrough), not be
// refused: only an explicit force on a non-associative algorithm is an
// error. A lone aggregator blocks forever waiting for its children, so
// the test watches for the listen banner and then kills the process.
func TestFedaggKTpFLAutoStarts(t *testing.T) {
	bin := cmdtest.Build(t, ".")
	// -prereduce force is the only mode CheckPreReduce can refuse; auto
	// and off must pass the same validation for every method.
	for _, mode := range []string{"auto", "off"} {
		cmd := exec.Command(bin,
			"-dataset", "fashion", "-clients", "6", "-featdim", "16",
			"-upstream", "127.0.0.1:1", "-agg", "0", "-aggregators", "2",
			"-method", "KT-pFL", "-prereduce", mode)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		var errs strings.Builder
		cmd.Stderr = &errs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		banner := make(chan string, 1)
		go func() {
			scanner := bufio.NewScanner(stdout)
			for scanner.Scan() {
				if strings.HasPrefix(scanner.Text(), "# fedagg listening on ") {
					banner <- scanner.Text()
					return
				}
			}
			banner <- ""
		}()
		select {
		case line := <-banner:
			if line == "" {
				t.Fatalf("prereduce %s: KT-pFL should pass validation and bind\nstderr:\n%s", mode, errs.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("prereduce %s: no listen banner", mode)
		}
		cmd.Process.Kill()
		cmd.Wait()
	}
}
