package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// Table 1 is the static hyperparameter record — the cheapest end-to-end
// path through the tables binary.
func TestTablesSmoke(t *testing.T) {
	out := cmdtest.Run(t, nil, "-tiny", "-table", "1")
	if !strings.Contains(out, "Table 1") {
		t.Fatalf("missing Table 1 output:\n%s", out)
	}
}
