// Command tables regenerates the paper's tables (1–5) as markdown at the
// configured scale. Run with -table 0 (default) for all tables.
//
//	tables -table 2            # just Table 2
//	tables -rounds 60 -clients 12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/data"
	"repro/internal/experiments"
)

func main() {
	var (
		table   = flag.Int("table", 0, "table to regenerate (1–5; 0 = all)")
		clients = flag.Int("clients", 0, "clients (0 = scale default)")
		rounds  = flag.Int("rounds", 0, "rounds (0 = scale default)")
		seed    = flag.Int64("seed", 1, "experiment seed")
		tiny    = flag.Bool("tiny", false, "use the tiny (CI) scale")
		dsList  = flag.String("datasets", "", "comma-separated dataset subset (default: all three)")
	)
	flag.Parse()

	s := experiments.Small()
	if *tiny {
		s = experiments.Tiny()
	}
	s.Seed = *seed
	if *clients > 0 {
		s.Clients = *clients
	}
	if *rounds > 0 {
		s.Rounds = *rounds
	}

	want := func(n int) bool { return *table == 0 || *table == n }

	datasets := experiments.AllDatasets
	if *dsList != "" {
		datasets = nil
		for _, name := range strings.Split(*dsList, ",") {
			datasets = append(datasets, experiments.DatasetName(strings.TrimSpace(name)))
		}
	}

	if want(1) {
		fmt.Println(experiments.Table1Markdown(s))
	}
	if want(2) {
		t2, err := experiments.Table2(s, datasets, []data.PartitionKind{data.Dirichlet, data.Skewed})
		exitOn(err)
		fmt.Println(t2.Markdown())
	}
	if want(3) {
		t3, err := experiments.Table3(s, datasets)
		exitOn(err)
		fmt.Println(t3.Markdown())
	}
	if want(4) {
		t4, err := experiments.Table4(s, datasets)
		exitOn(err)
		fmt.Println(t4.Markdown())
	}
	if want(5) {
		rows, err := experiments.Table5(s, experiments.CIFAR10)
		exitOn(err)
		fmt.Println(experiments.Table5Markdown(rows))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
}
