// Command fedclient runs one client node of a multi-process federation:
// it builds exactly client -id of the shared fleet configuration (same
// dataset, partition, seeds and scale as every other process), dials the
// fedserver, and serves local-training and evaluation requests until the
// federation completes. The client owns its model, data, optimizer and
// upload quantization; it never sees server state beyond the broadcasts
// it is handed.
//
// The -dataset/-partition/-fleet/-seed/-featdim/-clients flags must match
// the server's configuration (and the other clients'): the fleet is a
// pure function of them, which is what lets N processes reconstruct a
// consistent federation with nothing shared but flags.
//
// Fault tolerance: when the connection dies mid-run the client redials
// with its server-issued session token for up to -reconnect, resuming the
// round it was in. With -session the token is persisted to a file, so a
// killed-and-restarted fedclient process reclaims its old identity
// instead of churning. The -chaos-* flags wrap the transport in a
// deterministic fault injector for failure testing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// loadToken reads a session token persisted by a previous run; a missing
// or malformed file means "no session" (fresh join), never an error.
func loadToken(path string) uint64 {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	tok, err := strconv.ParseUint(strings.TrimSpace(string(b)), 16, 64)
	if err != nil {
		return 0
	}
	return tok
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7143", "fedserver TCP address")
		id         = flag.Int("id", -1, "this client's id, in [0, -clients)")
		clients    = flag.Int("clients", 0, "total fleet size (0 = scale default; must match the server)")
		dataset    = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		partition  = flag.String("partition", "dir", "partition: dir | skewed")
		fleet      = flag.String("fleet", "heterogeneous", "fleet: "+experiments.FleetNames)
		method     = flag.String("method", experiments.MethodProposed, "method (must match the server)")
		seed       = flag.Int64("seed", 1, "experiment seed (must match the server)")
		featDim    = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
		codecName  = flag.String("codec", "f64", "wire codec: f64 | f32 | i8 | bf16 | topk (must match the server)")
		topk       = flag.Float64("topk", 0, "top-k upload fraction, in (0, 1) (must match the server)")
		delta      = flag.Bool("delta", false, "delta-framed weight uploads (must match the server)")
		dtypeName  = flag.String("dtype", "f64", "model element type: f64 | f32 | bf16")
		dialBudget = flag.Duration("dial-timeout", 30*time.Second, "how long to keep retrying the first dial while the server comes up")
		reconnect  = flag.Duration("reconnect", 30*time.Second, "how long to keep redialing after a mid-run disconnect")
		sessFile   = flag.String("session", "", "file to persist the session token in (restart resumes the session)")
		chaosSeed  = flag.Int64("chaos-seed", 0, "fault-injection seed (0 = chaos off)")
		chaosDrop  = flag.Float64("chaos-drop", 0, "chaos: probability a message send kills the connection")
		chaosDelay = flag.Float64("chaos-delay", 0, "chaos: probability a message is delayed")
		chaosDup   = flag.Float64("chaos-dup", 0, "chaos: probability a received message is duplicated")
	)
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fedclient: "+format+"\n", args...)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 {
		usage("unexpected arguments %q", strings.Join(args, " "))
	}
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Seed = *seed
	if *clients < 0 {
		usage("-clients must be >= 0, got %d", *clients)
	}
	if *clients > 0 {
		s.Clients = *clients
	}
	if *featDim < 0 {
		usage("-featdim must be >= 0, got %d", *featDim)
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}
	if *id < 0 || *id >= s.Clients {
		usage("-id must be in [0, %d (clients)), got %d", s.Clients, *id)
	}
	if *dialBudget < 0 {
		usage("-dial-timeout must be >= 0, got %v", *dialBudget)
	}
	if *reconnect < 0 {
		usage("-reconnect must be >= 0, got %v", *reconnect)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"-chaos-drop", *chaosDrop}, {"-chaos-delay", *chaosDelay}, {"-chaos-dup", *chaosDup}} {
		if p.v < 0 || p.v > 1 {
			usage("%s must be in [0, 1], got %v", p.name, p.v)
		}
	}
	name, err := experiments.ParseDataset(*dataset)
	if err != nil {
		usage("%v", err)
	}
	kind, err := data.ParsePartition(*partition)
	if err != nil {
		usage("%v", err)
	}
	spec, err := comm.ParseSpec(*codecName, *topk, *delta)
	if err != nil {
		usage("%v", err)
	}
	dtype, err := tensor.ParseDType(*dtypeName)
	if err != nil {
		usage("%v", err)
	}
	s.DType = dtype

	build, _, err := experiments.NewFleetBuilder(name, kind, *fleet, s.Clients, s)
	if err != nil {
		usage("%v", err)
	}
	algo, err := experiments.WireAlgorithmFor(*method, name, s)
	if err != nil {
		usage("%v", err)
	}

	client := build(*id)
	fmt.Printf("# fedclient %d/%d: %s, %d train / %d test examples, dialing %s\n",
		*id, s.Clients, client.Model.Name, len(client.Train), len(client.Test), *addr)

	var tr transport.Transport = transport.NewTCP(transport.Options{DType: dtype, Spec: spec})
	if *chaosSeed != 0 {
		tr = transport.NewChaos(tr, transport.ChaosConfig{
			Seed:  *chaosSeed,
			Drop:  *chaosDrop,
			Delay: *chaosDelay,
			Dup:   *chaosDup,
		})
	}
	ctx := context.Background()

	// The server may still be binding its port; retry the first dial with
	// capped exponential backoff for -dial-timeout. A rejected handshake
	// (dtype/codec/version mismatch) is deterministic — retrying cannot
	// succeed — so DialRetry fails it immediately instead of hammering the
	// server's accept loop for the whole window.
	retry := transport.RetryOptions{
		Budget: *dialBudget,
		Seed:   *seed*1000 + int64(*id),
		Token:  0,
	}
	if *sessFile != "" {
		retry.Token = loadToken(*sessFile)
		if retry.Token != 0 {
			fmt.Printf("# fedclient %d: resuming session %#x from %s\n", *id, retry.Token, *sessFile)
		}
	}
	var conn transport.Conn
	if *dialBudget == 0 {
		// A zero budget means one attempt, fail fast — CI's dead-port test
		// and scripts that manage their own ordering rely on it.
		conn, err = transport.DialWithToken(ctx, tr, *addr, retry.Token)
	} else {
		conn, err = transport.DialRetry(ctx, tr, *addr, retry)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedclient: %v\n", err)
		os.Exit(1)
	}

	node := &fl.ClientNode{
		Client: client,
		Algo:   algo,
		Token:  retry.Token,
	}
	if *reconnect > 0 {
		node.Dialer = func(ctx context.Context, token uint64) (transport.Conn, error) {
			return transport.DialRetry(ctx, tr, *addr, transport.RetryOptions{
				Budget: *reconnect,
				Seed:   *seed*1000 + int64(*id) + 1,
				Token:  token,
			})
		}
	}
	if *sessFile != "" {
		node.OnToken = func(tok uint64) {
			// Best-effort persistence: losing the token only costs the
			// restarted process its session, never the federation.
			_ = os.WriteFile(*sessFile, []byte(strconv.FormatUint(tok, 16)+"\n"), 0o644)
		}
	}
	if err := node.Run(ctx, conn); err != nil {
		fmt.Fprintf(os.Stderr, "fedclient: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# fedclient %d: federation complete\n", *id)
}
