// Command fedclient runs one client node of a multi-process federation:
// it builds exactly client -id of the shared fleet configuration (same
// dataset, partition, seeds and scale as every other process), dials the
// fedserver, and serves local-training and evaluation requests until the
// federation completes. The client owns its model, data, optimizer and
// upload quantization; it never sees server state beyond the broadcasts
// it is handed.
//
// The -dataset/-partition/-fleet/-seed/-featdim/-clients flags must match
// the server's configuration (and the other clients'): the fleet is a
// pure function of them, which is what lets N processes reconstruct a
// consistent federation with nothing shared but flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7143", "fedserver TCP address")
		id        = flag.Int("id", -1, "this client's id, in [0, -clients)")
		clients   = flag.Int("clients", 0, "total fleet size (0 = scale default; must match the server)")
		dataset   = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		partition = flag.String("partition", "dir", "partition: dir | skewed")
		fleet     = flag.String("fleet", "heterogeneous", "fleet: "+experiments.FleetNames)
		method    = flag.String("method", experiments.MethodProposed, "method (must match the server)")
		seed      = flag.Int64("seed", 1, "experiment seed (must match the server)")
		featDim   = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
		codecName = flag.String("codec", "f64", "wire codec: f64 | f32 | i8 (must match the server)")
		dtypeName = flag.String("dtype", "f64", "model element type: f64 | f32")
		waitFor   = flag.Duration("wait", 30*time.Second, "how long to keep retrying the first dial while the server comes up")
	)
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fedclient: "+format+"\n", args...)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 {
		usage("unexpected arguments %q", strings.Join(args, " "))
	}
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Seed = *seed
	if *clients < 0 {
		usage("-clients must be >= 0, got %d", *clients)
	}
	if *clients > 0 {
		s.Clients = *clients
	}
	if *featDim < 0 {
		usage("-featdim must be >= 0, got %d", *featDim)
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}
	if *id < 0 || *id >= s.Clients {
		usage("-id must be in [0, %d (clients)), got %d", s.Clients, *id)
	}
	if *waitFor < 0 {
		usage("-wait must be >= 0, got %v", *waitFor)
	}
	name, err := experiments.ParseDataset(*dataset)
	if err != nil {
		usage("%v", err)
	}
	kind, err := data.ParsePartition(*partition)
	if err != nil {
		usage("%v", err)
	}
	codec, err := comm.ParseCodec(*codecName)
	if err != nil {
		usage("%v", err)
	}
	dtype, err := tensor.ParseDType(*dtypeName)
	if err != nil {
		usage("%v", err)
	}
	s.DType = dtype

	build, _, err := experiments.NewFleetBuilder(name, kind, *fleet, s.Clients, s)
	if err != nil {
		usage("%v", err)
	}
	algo, err := experiments.WireAlgorithmFor(*method, name, s)
	if err != nil {
		usage("%v", err)
	}

	client := build(*id)
	fmt.Printf("# fedclient %d/%d: %s, %d train / %d test examples, dialing %s\n",
		*id, s.Clients, client.Model.Name, len(client.Train), len(client.Test), *addr)

	// The server may still be binding its port; retry the dial for -wait.
	// A rejected handshake (dtype/codec/version mismatch) is deterministic
	// — retrying cannot succeed — so it fails immediately instead of
	// hammering the server's accept loop for the whole window.
	tr := transport.NewTCP(transport.Options{DType: dtype, Codec: codec})
	ctx := context.Background()
	var conn transport.Conn
	deadline := time.Now().Add(*waitFor)
	for {
		conn, err = tr.Dial(ctx, *addr)
		if err == nil || errors.Is(err, transport.ErrHandshake) || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedclient: %v\n", err)
		os.Exit(1)
	}

	node := &fl.ClientNode{Client: client, Algo: algo}
	if err := node.Run(ctx, conn); err != nil {
		fmt.Fprintf(os.Stderr, "fedclient: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# fedclient %d: federation complete\n", *id)
}
