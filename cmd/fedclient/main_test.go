package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// fedclient's post-parse validation: every misconfiguration is a usage
// error (exit 2), and an unreachable server is a runtime error (exit 1)
// once the dial-retry window closes. The happy path — joining a real
// federation — is covered by cmd/fedserver's multi-process smoke tests.
func TestFedclientFlagValidation(t *testing.T) {
	env := []string{"REPRO_SCALE=tiny"}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{}, "-id"}, // id is required
		{[]string{"-id", "9", "-clients", "3"}, "-id"},
		{[]string{"-id", "-1"}, "-id"},
		{[]string{"-id", "0", "-clients", "-1"}, "-clients"},
		{[]string{"-id", "0", "-fleet", "mesh"}, "fleet"},
		{[]string{"-id", "0", "-dataset", "imagenet"}, "dataset"},
		{[]string{"-id", "0", "-method", "Gossip"}, "method"},
		{[]string{"-id", "0", "-codec", "f16"}, "codec"},
		{[]string{"-id", "0", "-dtype", "f16"}, "dtype"},
		{[]string{"-id", "0", "-dial-timeout", "-1s"}, "dial-timeout"},
		{[]string{"-id", "0", "-reconnect", "-1s"}, "reconnect"},
		{[]string{"-id", "0", "-chaos-drop", "1.5"}, "chaos-drop"},
		{[]string{"-id", "0", "-chaos-dup", "-0.1"}, "chaos-dup"},
		{[]string{"-id", "0", "trailing"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		out := cmdtest.RunErr(t, 2, env, tc.args...)
		if !strings.Contains(out, tc.want) {
			t.Fatalf("args %v: error should mention %q:\n%s", tc.args, tc.want, out)
		}
	}
}

// TestFedclientDialFailure points the client at a dead port with no retry
// window; it must exit 1 with a transport error, not hang.
func TestFedclientDialFailure(t *testing.T) {
	out := cmdtest.RunErr(t, 1, []string{"REPRO_SCALE=tiny"},
		"-id", "0", "-clients", "3", "-addr", "127.0.0.1:1", "-dial-timeout", "0s")
	if !strings.Contains(out, "fedclient:") {
		t.Fatalf("dial failure output:\n%s", out)
	}
}
