package main

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
)

// serverProc is a running fedserver with its stdout scraped line by line.
type serverProc struct {
	cmd   *exec.Cmd
	addr  string
	lines chan string // every stdout line after the listen banner
	errs  *strings.Builder
}

// startServer launches a fedserver binary on :0 and blocks until it prints
// its bound address.
func startServer(t *testing.T, bin string, env []string, args ...string) *serverProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var errs strings.Builder
	cmd.Stderr = &errs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sp := &serverProc{cmd: cmd, lines: make(chan string, 256), errs: &errs}
	scanner := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		defer close(sp.lines)
		for scanner.Scan() {
			line := scanner.Text()
			if a, ok := strings.CutPrefix(line, "# fedserver listening on "); ok {
				addrCh <- a
				continue
			}
			sp.lines <- line
		}
	}()
	select {
	case sp.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("fedserver did not print its address\nstderr:\n%s", errs.String())
	}
	return sp
}

// wait collects the rest of the server's stdout and its exit status.
func (sp *serverProc) wait(t *testing.T) []string {
	t.Helper()
	var out []string
	for line := range sp.lines {
		out = append(out, line)
	}
	if err := sp.cmd.Wait(); err != nil {
		t.Fatalf("fedserver exited with %v\nstdout:\n%s\nstderr:\n%s", err, strings.Join(out, "\n"), sp.errs.String())
	}
	return out
}

// startClient launches one fedclient process against the server.
func startClient(t *testing.T, bin string, env []string, addr string, id int, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr, "-id", strconv.Itoa(id)}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// binaries builds fedserver and fedclient once per test process, into a
// directory that outlives any single test (t.TempDir would vanish with
// the first test that built them).
var (
	binOnce              sync.Once
	serverBin, clientBin string
	binErr               error
)

func binaries(t *testing.T) (string, string) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	binOnce.Do(func() {
		goBin, err := exec.LookPath("go")
		if err != nil {
			binErr = err
			return
		}
		dir, err := os.MkdirTemp("", "fednodes")
		if err != nil {
			binErr = err
			return
		}
		for _, b := range []struct{ out, pkg string }{
			{"fedserver.bin", "."},
			{"fedclient.bin", "../fedclient"},
		} {
			build := exec.Command(goBin, "build", "-o", dir+"/"+b.out, b.pkg)
			if out, err := build.CombinedOutput(); err != nil {
				binErr = fmt.Errorf("go build %s: %v\n%s", b.pkg, err, out)
				return
			}
		}
		serverBin, clientBin = dir+"/fedserver.bin", dir+"/fedclient.bin"
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return serverBin, clientBin
}

// parseFinal extracts the mean accuracy from the "# final: X ± Y" line.
func parseFinal(t *testing.T, lines []string) float64 {
	t.Helper()
	for _, line := range lines {
		if rest, ok := strings.CutPrefix(line, "# final: "); ok {
			fields := strings.Fields(rest)
			acc, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				t.Fatalf("unparseable final line %q: %v", line, err)
			}
			return acc
		}
	}
	t.Fatalf("no final line in output:\n%s", strings.Join(lines, "\n"))
	return 0
}

// TestMultiProcessSmokeParity is the ISSUE's multi-process smoke test: one
// fedserver plus three fedclient processes over localhost at tiny scale
// must reproduce the in-process sync run's final accuracy to within 0.02
// at the same seed.
func TestMultiProcessSmokeParity(t *testing.T) {
	sbin, cbin := binaries(t)
	const clients, rounds = 3, 3
	env := []string{"REPRO_SCALE=tiny"}

	// The in-process reference at the identical configuration.
	s := experiments.Tiny()
	s.Clients, s.Rounds, s.Seed = clients, rounds, 1
	factory, _, err := experiments.NewHeterogeneousFleet(experiments.Fashion, data.Dirichlet, clients, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Run(experiments.MethodProposed, experiments.Fashion, factory, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	wantFinal := experiments.Final(want).MeanAcc

	srv := startServer(t, sbin, env, "-clients", fmt.Sprint(clients), "-rounds", fmt.Sprint(rounds), "-seed", "1")
	for i := 0; i < clients; i++ {
		startClient(t, cbin, env, srv.addr, i, "-clients", fmt.Sprint(clients), "-seed", "1")
	}
	got := parseFinal(t, srv.wait(t))
	if d := math.Abs(got - wantFinal); d > 0.02 {
		t.Fatalf("multi-process final accuracy %.4f vs inproc sync %.4f (Δ %.4f > 0.02)", got, wantFinal, d)
	}
}

// TestMultiProcessAllMethods runs every algorithm family through the real
// binaries: the acceptance criterion that all five methods are runnable
// through fedserver/fedclient.
func TestMultiProcessAllMethods(t *testing.T) {
	sbin, cbin := binaries(t)
	env := []string{"REPRO_SCALE=tiny"}
	cases := []struct {
		method string
		fleet  string
	}{
		{experiments.MethodBaseline, "heterogeneous"},
		{experiments.MethodFedProto, "proto"},
		{experiments.MethodKTpFL, "heterogeneous"},
		{experiments.MethodFedAvg, "homogeneous"},
		{experiments.MethodProposed, "heterogeneous"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.method, func(t *testing.T) {
			const clients = 3
			srv := startServer(t, sbin, env, "-clients", fmt.Sprint(clients), "-rounds", "2", "-method", tc.method)
			for i := 0; i < clients; i++ {
				startClient(t, cbin, env, srv.addr, i,
					"-clients", fmt.Sprint(clients), "-method", tc.method, "-fleet", tc.fleet)
			}
			acc := parseFinal(t, srv.wait(t))
			if acc < 0 || acc > 1 {
				t.Fatalf("%s final accuracy out of range: %v", tc.method, acc)
			}
		})
	}
}

// pickPort reserves a localhost address by binding and releasing it, so a
// killed fedserver can be restarted on the same address its clients are
// still re-dialing.
func pickPort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// dataRounds extracts the round column of every CSV data row.
func dataRounds(t *testing.T, lines []string) []int {
	t.Helper()
	var rounds []int
	for _, line := range lines {
		if len(line) == 0 || line[0] < '0' || line[0] > '9' {
			continue
		}
		r, err := strconv.Atoi(line[:strings.IndexByte(line, ',')])
		if err != nil {
			t.Fatalf("unparseable data row %q: %v", line, err)
		}
		rounds = append(rounds, r)
	}
	return rounds
}

// parseFaults extracts the reconnect and churn counters from the
// "# faults: ..." summary line.
func parseFaults(t *testing.T, lines []string) (reconnects, churned int) {
	t.Helper()
	for _, line := range lines {
		if strings.HasPrefix(line, "# faults: ") {
			var disc, drops, resends int
			if _, err := fmt.Sscanf(line, "# faults: reconnects=%d disconnects=%d churned=%d stale_drops=%d resends=%d",
				&reconnects, &disc, &churned, &drops, &resends); err != nil {
				t.Fatalf("unparseable faults line %q: %v", line, err)
			}
			return reconnects, churned
		}
	}
	t.Fatalf("no faults line in output:\n%s", strings.Join(lines, "\n"))
	return 0, 0
}

// TestMultiProcessKillServerResume SIGKILLs the fedserver mid-federation —
// no goodbye to anyone, exactly like a crashed host — then restarts it on
// the same address with -resume pointed at the latest checkpoint. The
// still-running clients re-attach with their session tokens and the
// federation completes every remaining round with no committed-round gaps.
func TestMultiProcessKillServerResume(t *testing.T) {
	sbin, cbin := binaries(t)
	const clients, rounds = 3, 6
	env := []string{"REPRO_SCALE=tiny"}
	addr := pickPort(t)
	ckptDir := t.TempDir()

	srv := startServer(t, sbin, env, "-addr", addr,
		"-clients", fmt.Sprint(clients), "-rounds", fmt.Sprint(rounds), "-checkpoint", ckptDir)
	for i := 0; i < clients; i++ {
		startClient(t, cbin, env, srv.addr, i, "-clients", fmt.Sprint(clients))
	}
	// Wait for the first committed round to appear, then kill -9.
	var before []string
	for line := range srv.lines {
		before = append(before, line)
		if len(line) > 0 && line[0] >= '0' && line[0] <= '9' {
			break
		}
	}
	if len(dataRounds(t, before)) == 0 {
		t.Fatalf("no data row before the kill:\n%s\nstderr:\n%s", strings.Join(before, "\n"), srv.errs.String())
	}
	srv.cmd.Process.Kill()
	srv.cmd.Wait()
	for line := range srv.lines {
		before = append(before, line)
	}

	snaps, err := filepath.Glob(filepath.Join(ckptDir, "round-*.ckpt"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoints on disk (%v): %v", err, snaps)
	}
	sort.Strings(snaps)
	latest := snaps[len(snaps)-1]
	var resumeRound int
	if _, err := fmt.Sscanf(filepath.Base(latest), "round-%d.ckpt", &resumeRound); err != nil {
		t.Fatalf("unparseable checkpoint name %q: %v", latest, err)
	}
	// Every round the dead server managed to print was checkpointed.
	for _, r := range dataRounds(t, before) {
		if r > resumeRound {
			t.Fatalf("round %d printed but latest checkpoint is round %d", r, resumeRound)
		}
	}

	srv2 := startServer(t, sbin, env, "-addr", addr,
		"-clients", fmt.Sprint(clients), "-rounds", fmt.Sprint(rounds), "-checkpoint", ckptDir, "-resume", latest)
	out := srv2.wait(t)
	if !strings.Contains(srv2.errs.String(), "resuming from") {
		t.Errorf("restarted server never announced the resume; stderr:\n%s", srv2.errs.String())
	}
	got := dataRounds(t, out)
	if len(got) == 0 {
		t.Fatalf("resumed server committed nothing:\n%s", strings.Join(out, "\n"))
	}
	for i, r := range got {
		if want := resumeRound + 1 + i; r != want {
			t.Fatalf("resumed round sequence has a gap: row %d is round %d, want %d", i, r, want)
		}
	}
	if last := got[len(got)-1]; last != rounds {
		t.Fatalf("resumed run stopped at round %d, want %d", last, rounds)
	}
	reconnects, churned := parseFaults(t, out)
	if reconnects != clients {
		t.Errorf("resumed server adopted %d reconnects, want %d (every client, by token)", reconnects, clients)
	}
	if churned != 0 {
		t.Errorf("resumed server churned %d sessions, want 0", churned)
	}
	acc := parseFinal(t, out)
	if acc < 0 || acc > 1 {
		t.Fatalf("resumed final accuracy out of range: %v", acc)
	}
}

// TestMultiProcessClientRestartResume kills two client processes after the
// first committed round: one restarts immediately with its -session token
// file and resumes its identity; the other never returns and churns once
// the reconnect window elapses. The federation finishes every round.
func TestMultiProcessClientRestartResume(t *testing.T) {
	sbin, cbin := binaries(t)
	const clients, rounds = 4, 6
	env := []string{"REPRO_SCALE=tiny"}
	tokFile := filepath.Join(t.TempDir(), "client2.token")

	srv := startServer(t, sbin, env, "-clients", fmt.Sprint(clients), "-rounds", fmt.Sprint(rounds),
		"-heartbeat", "100ms", "-window", "2s")
	var procs []*exec.Cmd
	for i := 0; i < clients; i++ {
		extra := []string{"-clients", fmt.Sprint(clients)}
		if i == 2 {
			extra = append(extra, "-session", tokFile)
		}
		procs = append(procs, startClient(t, cbin, env, srv.addr, i, extra...))
	}
	var collected []string
	killed := false
	for line := range srv.lines {
		collected = append(collected, line)
		if !killed && len(line) > 0 && line[0] >= '0' && line[0] <= '9' {
			// The token file exists by now: the welcome that granted it
			// preceded round 1. Kill both, restart only client 2.
			if err := procs[2].Process.Kill(); err != nil {
				t.Fatal(err)
			}
			if err := procs[3].Process.Kill(); err != nil {
				t.Fatal(err)
			}
			startClient(t, cbin, env, srv.addr, 2, "-clients", fmt.Sprint(clients), "-session", tokFile)
			killed = true
		}
	}
	if !killed {
		t.Fatalf("no data row ever appeared:\n%s\nstderr:\n%s", strings.Join(collected, "\n"), srv.errs.String())
	}
	if err := srv.cmd.Wait(); err != nil {
		t.Fatalf("fedserver exited with %v\nstdout:\n%s\nstderr:\n%s",
			err, strings.Join(collected, "\n"), srv.errs.String())
	}
	got := dataRounds(t, collected)
	if len(got) != rounds {
		t.Fatalf("federation committed %d rounds, want %d:\n%s", len(got), rounds, strings.Join(collected, "\n"))
	}
	for i, r := range got {
		if r != i+1 {
			t.Fatalf("round sequence has a gap: row %d is round %d", i, r)
		}
	}
	reconnects, churned := parseFaults(t, collected)
	if reconnects < 1 {
		t.Errorf("server adopted %d reconnects, want >= 1 (the restarted client)", reconnects)
	}
	if churned != 1 {
		t.Errorf("server churned %d sessions, want exactly 1 (the never-returning client)", churned)
	}
	acc := parseFinal(t, collected)
	if acc < 0 || acc > 1 {
		t.Fatalf("final accuracy out of range: %v", acc)
	}
}

// TestMultiProcessKillClientChurn SIGKILLs one of three client processes
// after the first round has committed; the federation must finish every
// remaining round with the survivors and exit cleanly.
func TestMultiProcessKillClientChurn(t *testing.T) {
	sbin, cbin := binaries(t)
	const clients, rounds = 3, 6
	env := []string{"REPRO_SCALE=tiny"}
	srv := startServer(t, sbin, env, "-clients", fmt.Sprint(clients), "-rounds", fmt.Sprint(rounds))
	var procs []*exec.Cmd
	for i := 0; i < clients; i++ {
		procs = append(procs, startClient(t, cbin, env, srv.addr, i, "-clients", fmt.Sprint(clients)))
	}
	// Wait for the first CSV data row (round 1 committed), then kill one
	// client outright.
	var collected []string
	killed := false
	for line := range srv.lines {
		collected = append(collected, line)
		if !killed && len(line) > 0 && line[0] >= '0' && line[0] <= '9' {
			if err := procs[clients-1].Process.Kill(); err != nil {
				t.Fatal(err)
			}
			killed = true
		}
	}
	if !killed {
		t.Fatalf("no data row ever appeared:\n%s\nstderr:\n%s", strings.Join(collected, "\n"), srv.errs.String())
	}
	if err := srv.cmd.Wait(); err != nil {
		t.Fatalf("churned fedserver exited with %v\nstdout:\n%s\nstderr:\n%s",
			err, strings.Join(collected, "\n"), srv.errs.String())
	}
	rows := 0
	for _, line := range collected {
		if len(line) > 0 && line[0] >= '0' && line[0] <= '9' {
			rows++
		}
	}
	if rows != rounds {
		t.Fatalf("churned run committed %d rounds, want %d:\n%s", rows, rounds, strings.Join(collected, "\n"))
	}
	acc := parseFinal(t, collected)
	if acc < 0 || acc > 1 {
		t.Fatalf("churned final accuracy out of range: %v", acc)
	}
}
