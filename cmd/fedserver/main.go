// Command fedserver runs the server node of a multi-process federation:
// it listens on a TCP address, waits for -clients fedclient processes to
// join, drives the -sched schedule for -rounds rounds and prints the same
// learning-curve CSV fedsim prints. The server holds only aggregation
// state — global classifier/model/prototypes and the sharded accumulators
// — and never touches a client model; everything else crosses the wire
// (see DESIGN.md §8 and §9).
//
// The cohort sampler is seeded exactly like the in-process simulation, so
// at full precision a fedserver run reproduces the inproc sync metrics to
// within floating-point parity.
//
// Fault tolerance: clients that vanish get a -window grace period to
// reconnect (they present a session token and resume mid-round); past the
// window they are churned out of the federation, which keeps running.
// With -checkpoint the server snapshots every committed round, and
// -resume restarts a SIGKILLed server from the latest snapshot — session
// tokens survive the restart, so running clients reconnect on their own.
//
// Example (one server, three clients, tiny scale):
//
//	REPRO_SCALE=tiny fedserver -addr 127.0.0.1:0 -clients 3 -method Proposed &
//	REPRO_SCALE=tiny fedclient -addr 127.0.0.1:PORT -id 0 -clients 3 &
//	REPRO_SCALE=tiny fedclient -addr 127.0.0.1:PORT -id 1 -clients 3 &
//	REPRO_SCALE=tiny fedclient -addr 127.0.0.1:PORT -id 2 -clients 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7143", "TCP address to listen on (port 0 picks a free port, printed on stdout)")
		clients   = flag.Int("clients", 0, "number of client processes to wait for (0 = scale default)")
		aggCount  = flag.Int("aggregators", 0, "tree topology: serve this many fedagg processes instead of clients directly (0 = flat)")
		dataset   = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		method    = flag.String("method", experiments.MethodProposed, "method: Baseline | FedProto | KT-pFL | KT-pFL+weight | FedAvg | FedProx | Proposed | Proposed+weight")
		rounds    = flag.Int("rounds", 0, "communication rounds (0 = scale default)")
		rate      = flag.Float64("rate", 1.0, "client sampling rate per round, in (0, 1]")
		seed      = flag.Int64("seed", 1, "experiment seed (must match the clients')")
		featDim   = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
		codecName = flag.String("codec", "f64", "wire codec: f64 | f32 | i8 | bf16 | topk (f32 values at 5% density)")
		topk      = flag.Float64("topk", 0, "sparsify weight uploads to this largest-|v| fraction, in (0, 1) (0 = dense; composes with any -codec)")
		delta     = flag.Bool("delta", false, "frame weight uploads as deltas against the last committed basis (clients must pass the same flag)")
		dtypeName = flag.String("dtype", "f64", "model element type: f64 | f32 | bf16 (handshake-validated against clients)")
		schedName = flag.String("sched", "sync", "scheduler: sync | async | semisync")
		staleness = flag.Int("staleness", 0, "async: drop updates staler than this many commits (0 = default 8)")
		decay     = flag.Float64("decay", 0, "staleness decay α in weight 1/(1+α·s) (0 = no decay)")
		quorum    = flag.Int("quorum", 0, "semisync: commit after K applied updates (0 = majority; at most -clients)")
		ckptDir   = flag.String("checkpoint", "", "directory to write a snapshot to after every committed round")
		ckptCodec = flag.String("ckpt-codec", "f64", "checkpoint vector codec: f64 | f32 | i8 | bf16")
		ckptEvery = flag.Int("every", 1, "checkpoint every Nth committed round")
		resume    = flag.String("resume", "", "checkpoint file to resume the federation from")
		heartbeat = flag.Duration("heartbeat", fl.DefaultHeartbeat, "server heartbeat interval (clients echo it)")
		deadAfter = flag.Duration("dead", 0, "declare a silent connection dead after this long (0 = 5x heartbeat)")
		window    = flag.Duration("window", fl.DefaultReconnectWindow, "how long a dead client may take to reconnect before it is churned")
		evalSmpl  = flag.Int("evalsample", 0, "evaluate a deterministic per-round sample of this many clients instead of the full federation (0 = full sweep)")
	)
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fedserver: "+format+"\n", args...)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 {
		usage("unexpected arguments %q", strings.Join(args, " "))
	}
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Seed = *seed
	if *clients < 0 {
		usage("-clients must be >= 0, got %d", *clients)
	}
	if *rounds < 0 {
		usage("-rounds must be >= 0, got %d", *rounds)
	}
	if *featDim < 0 {
		usage("-featdim must be >= 0, got %d", *featDim)
	}
	if *clients > 0 {
		s.Clients = *clients
	}
	if *rounds > 0 {
		s.Rounds = *rounds
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}
	if *rate <= 0 || *rate > 1 {
		usage("-rate must be in (0, 1], got %v", *rate)
	}
	name, err := experiments.ParseDataset(*dataset)
	if err != nil {
		usage("%v", err)
	}
	spec, err := comm.ParseSpec(*codecName, *topk, *delta)
	if err != nil {
		usage("%v", err)
	}
	snapCodec, err := comm.ParseCodec(*ckptCodec)
	if err != nil {
		usage("%v", err)
	}
	dtype, err := tensor.ParseDType(*dtypeName)
	if err != nil {
		usage("%v", err)
	}
	s.DType = dtype
	schedKind, err := fl.ParseScheduler(*schedName)
	if err != nil {
		usage("%v", err)
	}
	if *staleness < 0 {
		usage("-staleness must be >= 0, got %d", *staleness)
	}
	if *decay < 0 {
		usage("-decay must be >= 0, got %v", *decay)
	}
	if *quorum < 0 || *quorum > s.Clients {
		usage("-quorum must be in [0, %d (clients)], got %d — a quorum above the client count can never be met", s.Clients, *quorum)
	}
	if *ckptEvery < 1 {
		usage("-every must be >= 1, got %d", *ckptEvery)
	}
	if *heartbeat <= 0 {
		usage("-heartbeat must be > 0, got %v", *heartbeat)
	}
	if *deadAfter < 0 {
		usage("-dead must be >= 0, got %v", *deadAfter)
	}
	if *window <= 0 {
		usage("-window must be > 0, got %v", *window)
	}
	if *evalSmpl < 0 {
		usage("-evalsample must be >= 0, got %d", *evalSmpl)
	}
	if *aggCount < 0 || *aggCount > s.Clients {
		usage("-aggregators must be in [0, %d (clients)], got %d", s.Clients, *aggCount)
	}
	if *aggCount > 0 {
		// The tree topology's interlocks mirror fl.NodeConfig's: the root
		// commits a round when every aggregator reports (sync only), and
		// checkpoint/resume is undefined while aggregators deliberately
		// keep no snapshot state (DESIGN.md §11).
		if schedKind != fl.SchedSync {
			usage("-aggregators requires -sched sync (the tree commits a round when every aggregator reports)")
		}
		if *ckptDir != "" || *resume != "" {
			usage("-aggregators does not support -checkpoint/-resume (aggregators keep no snapshot state; restart the tree instead)")
		}
	}
	if _, err := experiments.WireAlgorithmFor(*method, name, s); err != nil {
		usage("%v", err)
	}
	var snap *fl.Snapshot
	if *resume != "" {
		snap, err = ckpt.Load(*resume)
		if err != nil {
			usage("%v", err)
		}
	}

	tr := transport.NewTCP(transport.Options{DType: dtype, Spec: spec})
	ln, err := tr.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	// The bound address goes out first (and unbuffered) so orchestration —
	// scripts, the CI smoke test — can listen on :0 and scrape the port.
	fmt.Printf("# fedserver listening on %s\n", ln.Addr())
	fmt.Printf("# fedserver %s on %s (%d clients, %d rounds, rate %.2f, sched %s, codec %s, dtype %s)\n",
		*method, name, s.Clients, s.Rounds, *rate, schedKind, spec, dtype)
	if *aggCount > 0 {
		fmt.Printf("# topology: tree (%d aggregators)\n", *aggCount)
	}
	if snap != nil {
		fmt.Fprintf(os.Stderr, "fedserver: resuming from %s at round %d\n", *resume, snap.Round)
	}

	algo, err := experiments.WireAlgorithmFor(*method, name, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	// CSV rows stream as rounds commit, so orchestration (and the churn
	// smoke test) can watch progress without waiting for the run to end.
	fmt.Println("round,local_epochs,mean_acc,std_acc,up_bytes,down_bytes,sim_time")
	cfg := experiments.NodeConfigFor(s, *rate, spec, s.Clients)
	cfg.Sched = schedKind
	cfg.MaxStaleness = *staleness
	cfg.Decay = *decay
	cfg.Quorum = *quorum
	cfg.EvalSample = *evalSmpl
	cfg.Aggregators = *aggCount
	cfg.Heartbeat = *heartbeat
	cfg.DeadAfter = *deadAfter
	cfg.ReconnectWindow = *window
	cfg.Resume = snap
	if *ckptDir != "" {
		cfg.Checkpoint = ckpt.Saver(*ckptDir, snapCodec)
		cfg.CheckpointEvery = *ckptEvery
	}
	cfg.OnRound = func(m fl.RoundMetrics) {
		fmt.Printf("%d,%d,%.4f,%.4f,%d,%d,%.2f\n",
			m.Round, m.LocalEpochs, m.MeanAcc, m.StdAcc, m.UpBytes, m.DownBytes, m.SimTime)
	}
	srv := fl.NewServerNode(algo, cfg)
	hist, err := srv.Serve(context.Background(), ln)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats
	fmt.Printf("# faults: reconnects=%d disconnects=%d churned=%d stale_drops=%d resends=%d\n",
		st.Reconnects, st.Disconnects, st.Churned, st.Drops, st.Resends)
	fin := experiments.Final(hist)
	fmt.Printf("# final: %.4f ± %.4f\n", fin.MeanAcc, fin.StdAcc)
}
