// Command fedserver runs the server node of a multi-process federation:
// it listens on a TCP address, waits for -clients fedclient processes to
// join, drives the synchronous barrier schedule for -rounds rounds and
// prints the same learning-curve CSV fedsim prints. The server holds only
// aggregation state — global classifier/model/prototypes and the sharded
// accumulators — and never touches a client model; everything else crosses
// the wire (see DESIGN.md §8).
//
// The cohort sampler is seeded exactly like the in-process simulation, so
// at full precision a fedserver run reproduces the inproc sync metrics to
// within floating-point parity.
//
// Example (one server, three clients, tiny scale):
//
//	REPRO_SCALE=tiny fedserver -addr 127.0.0.1:0 -clients 3 -method Proposed &
//	REPRO_SCALE=tiny fedclient -addr 127.0.0.1:PORT -id 0 -clients 3 &
//	REPRO_SCALE=tiny fedclient -addr 127.0.0.1:PORT -id 1 -clients 3 &
//	REPRO_SCALE=tiny fedclient -addr 127.0.0.1:PORT -id 2 -clients 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7143", "TCP address to listen on (port 0 picks a free port, printed on stdout)")
		clients   = flag.Int("clients", 0, "number of client processes to wait for (0 = scale default)")
		dataset   = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		method    = flag.String("method", experiments.MethodProposed, "method: Baseline | FedProto | KT-pFL | KT-pFL+weight | FedAvg | FedProx | Proposed | Proposed+weight")
		rounds    = flag.Int("rounds", 0, "communication rounds (0 = scale default)")
		rate      = flag.Float64("rate", 1.0, "client sampling rate per round, in (0, 1]")
		seed      = flag.Int64("seed", 1, "experiment seed (must match the clients')")
		featDim   = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
		codecName = flag.String("codec", "f64", "wire codec: f64 | f32 | i8")
		dtypeName = flag.String("dtype", "f64", "model element type: f64 | f32 (handshake-validated against clients)")
	)
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fedserver: "+format+"\n", args...)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 {
		usage("unexpected arguments %q", strings.Join(args, " "))
	}
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Seed = *seed
	if *clients < 0 {
		usage("-clients must be >= 0, got %d", *clients)
	}
	if *rounds < 0 {
		usage("-rounds must be >= 0, got %d", *rounds)
	}
	if *featDim < 0 {
		usage("-featdim must be >= 0, got %d", *featDim)
	}
	if *clients > 0 {
		s.Clients = *clients
	}
	if *rounds > 0 {
		s.Rounds = *rounds
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}
	if *rate <= 0 || *rate > 1 {
		usage("-rate must be in (0, 1], got %v", *rate)
	}
	name, err := experiments.ParseDataset(*dataset)
	if err != nil {
		usage("%v", err)
	}
	codec, err := comm.ParseCodec(*codecName)
	if err != nil {
		usage("%v", err)
	}
	dtype, err := tensor.ParseDType(*dtypeName)
	if err != nil {
		usage("%v", err)
	}
	s.DType = dtype
	if _, err := experiments.WireAlgorithmFor(*method, name, s); err != nil {
		usage("%v", err)
	}

	tr := transport.NewTCP(transport.Options{DType: dtype, Codec: codec})
	ln, err := tr.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	// The bound address goes out first (and unbuffered) so orchestration —
	// scripts, the CI smoke test — can listen on :0 and scrape the port.
	fmt.Printf("# fedserver listening on %s\n", ln.Addr())
	fmt.Printf("# fedserver %s on %s (%d clients, %d rounds, rate %.2f, codec %s, dtype %s)\n",
		*method, name, s.Clients, s.Rounds, *rate, codec, dtype)

	algo, err := experiments.WireAlgorithmFor(*method, name, s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	// CSV rows stream as rounds commit, so orchestration (and the churn
	// smoke test) can watch progress without waiting for the run to end.
	fmt.Println("round,local_epochs,mean_acc,std_acc,up_bytes,down_bytes,sim_time")
	cfg := experiments.NodeConfigFor(s, *rate, codec, s.Clients)
	cfg.OnRound = func(m fl.RoundMetrics) {
		fmt.Printf("%d,%d,%.4f,%.4f,%d,%d,%.2f\n",
			m.Round, m.LocalEpochs, m.MeanAcc, m.StdAcc, m.UpBytes, m.DownBytes, m.SimTime)
	}
	srv := fl.NewServerNode(algo, cfg)
	hist, err := srv.Serve(context.Background(), ln)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedserver: %v\n", err)
		os.Exit(1)
	}
	fin := experiments.Final(hist)
	fmt.Printf("# final: %.4f ± %.4f\n", fin.MeanAcc, fin.StdAcc)
}
