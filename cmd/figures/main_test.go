package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// Figure 2 renders the partition histograms without any training — the
// cheapest end-to-end path through the figures binary.
func TestFiguresSmoke(t *testing.T) {
	out := cmdtest.Run(t, nil, "-tiny", "-fig", "2")
	if !strings.Contains(out, "Figure 2") {
		t.Fatalf("missing Figure 2 output:\n%s", out)
	}
}
