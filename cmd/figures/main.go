// Command figures regenerates the paper's figures (2–9) as CSV series,
// markdown histograms, or text heatmaps.
//
//	figures -fig 4 -dataset cifar10     # heterogeneous learning curve CSV
//	figures -fig 8                      # t-SNE quality metrics + embedding
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure to regenerate (2–9; 0 = all)")
		dataset = flag.String("dataset", "fashion", "dataset for figures 4–9")
		rounds  = flag.Int("rounds", 0, "rounds (0 = scale default)")
		seed    = flag.Int64("seed", 1, "experiment seed")
		tiny    = flag.Bool("tiny", false, "use the tiny (CI) scale")
	)
	flag.Parse()

	s := experiments.Small()
	if *tiny {
		s = experiments.Tiny()
	}
	s.Seed = *seed
	if *rounds > 0 {
		s.Rounds = *rounds
	}
	name := experiments.DatasetName(*dataset)
	want := func(n int) bool { return *fig == 0 || *fig == n }

	if want(2) {
		for _, kind := range []data.PartitionKind{data.Dirichlet, data.Skewed} {
			hist, _, err := experiments.Figure23(experiments.CIFAR10, kind, s.Clients, s)
			exitOn(err)
			fmt.Println(experiments.HistogramMarkdown(hist,
				fmt.Sprintf("Figure 2 — CIFAR-10 stand-in label distribution, %s", kind)))
		}
	}
	if want(3) {
		for _, kind := range []data.PartitionKind{data.Dirichlet, data.Skewed} {
			hist, _, err := experiments.Figure23(experiments.EMNIST, kind, s.Clients, s)
			exitOn(err)
			fmt.Println(experiments.HistogramMarkdown(hist,
				fmt.Sprintf("Figure 3 — EMNIST stand-in label distribution, %s", kind)))
		}
	}
	if want(4) {
		series, err := experiments.Figure45(name, data.Dirichlet, s)
		exitOn(err)
		fmt.Printf("## Figure 4 — heterogeneous learning curves, %s Dir(0.5)\n%s\n", name, experiments.CSV(series))
	}
	if want(5) {
		series, err := experiments.Figure45(name, data.Skewed, s)
		exitOn(err)
		fmt.Printf("## Figure 5 — heterogeneous learning curves, %s skewed\n%s\n", name, experiments.CSV(series))
	}
	if want(6) {
		series, err := experiments.Figure67(name, s.Clients, 1.0, s)
		exitOn(err)
		fmt.Printf("## Figure 6 — homogeneous learning curves, %s Dir(0.5)\n%s\n", name, experiments.CSV(series))
	}
	if want(7) {
		series, err := experiments.Figure67(name, s.LargeClients, 0.1, s)
		exitOn(err)
		fmt.Printf("## Figure 7 — homogeneous %d clients rate 0.1, %s\n%s\n", s.LargeClients, name, experiments.CSV(series))
	}
	if want(8) {
		res, err := experiments.Figure8(name, s, 4)
		exitOn(err)
		fmt.Printf("## Figure 8 — feature-space clustering, %s\n", name)
		fmt.Printf("baseline: kNN label purity %.4f, client mixing %.4f\n", res.BaselinePurity, res.BaselineMixing)
		fmt.Printf("proposed: kNN label purity %.4f, client mixing %.4f\n", res.ProposedPurity, res.ProposedMixing)
		fmt.Println("x,y,label,client")
		for i := 0; i < res.Embedding.Rows(); i++ {
			fmt.Printf("%.3f,%.3f,%d,%d\n", res.Embedding.At(i, 0), res.Embedding.At(i, 1), res.Labels[i], res.ClientOf[i])
		}
		fmt.Println()
	}
	if want(9) {
		res, err := experiments.Figure9(name, s)
		exitOn(err)
		fmt.Printf("## Figure 9 — classifier-unit conductance, %s\n", name)
		fmt.Printf("probe label %d, %d clients correct, mean pairwise Spearman %.4f\n",
			res.ProbeLabel, len(res.Clients), res.MeanSpearman)
		fmt.Println("rank heatmap (units × clients):")
		fmt.Println(res.HeatmapASCII)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}
