package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// The bench binary shells out to `go test -bench` over the whole module, so
// its smoke test stops at build + usage: a full run would recompile the
// root test package inside every CI test job.
func TestBenchSmoke(t *testing.T) {
	out := cmdtest.Run(t, nil, "-h")
	if !strings.Contains(out, "-bench") {
		t.Fatalf("missing usage output:\n%s", out)
	}
}

func writeBench(t *testing.T, dir, name string, f File) string {
	t.Helper()
	buf, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// -compare must pass on improvements and noise, and fail on >threshold
// regressions of any shared metric (ns up, throughput down, allocs up).
func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	old := File{Benchmarks: []Result{
		{Name: "BenchmarkMatMul64", NsPerOp: 1000, AllocsPerOp: 4},
		{Name: "BenchmarkRoundThroughputAsync", NsPerOp: 500, Extra: map[string]float64{"rounds/vtime": 2.0}},
		{Name: "BenchmarkRetired", NsPerOp: 10},
	}}
	oldPath := writeBench(t, dir, "old.json", old)

	ok := File{Benchmarks: []Result{
		{Name: "BenchmarkMatMul64", NsPerOp: 1100, AllocsPerOp: 4},                                            // +10%: within budget
		{Name: "BenchmarkRoundThroughputAsync", NsPerOp: 480, Extra: map[string]float64{"rounds/vtime": 1.9}}, // -5%: fine
		{Name: "BenchmarkNew", NsPerOp: 99999},                                                                // only in new: ignored
	}}
	regs, err := compareFiles(oldPath, writeBench(t, dir, "ok.json", ok), 0.15, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("within-budget run flagged: %v", regs)
	}

	bad := File{Benchmarks: []Result{
		{Name: "BenchmarkMatMul64", NsPerOp: 1300, AllocsPerOp: 40},                                           // ns +30%, allocs 10x
		{Name: "BenchmarkRoundThroughputAsync", NsPerOp: 500, Extra: map[string]float64{"rounds/vtime": 1.0}}, // throughput halved
	}}
	badPath := writeBench(t, dir, "bad.json", bad)
	regs, err = compareFiles(oldPath, badPath, 0.15, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions (ns, allocs, throughput), got %d: %v", len(regs), regs)
	}

	// Portable mode skips the machine-dependent ns comparison but keeps the
	// allocs and throughput gates — the cross-machine CI configuration.
	regs, err = compareFiles(oldPath, badPath, 0.15, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("portable mode: want 2 regressions (allocs, throughput), got %d: %v", len(regs), regs)
	}

	if _, err := compareFiles(oldPath, filepath.Join(dir, "missing.json"), 0.15, true); err == nil {
		t.Fatal("missing file must error")
	}
}
