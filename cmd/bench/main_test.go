package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// The bench binary shells out to `go test -bench` over the whole module, so
// its smoke test stops at build + usage: a full run would recompile the
// root test package inside every CI test job.
func TestBenchSmoke(t *testing.T) {
	out := cmdtest.Run(t, nil, "-h")
	if !strings.Contains(out, "-bench") {
		t.Fatalf("missing usage output:\n%s", out)
	}
}
