// Command bench runs the repository's root benchmarks and writes a
// machine-readable BENCH_<date>.json so the performance trajectory stays
// comparable across PRs. It shells out to `go test -bench` with -benchmem,
// parses the standard benchmark output, and optionally joins a previous
// BENCH file to compute per-benchmark speedups.
//
// Usage:
//
//	go run ./cmd/bench -bench 'MatMul64|ConvForward|ClientLocalEpoch' \
//	    -benchtime 2s -baseline BENCH_2026-07-01.json
//
// Compare mode gates CI on performance: it joins two BENCH files by
// benchmark name and exits non-zero if any shared metric regressed by more
// than the threshold (default 15%) — ns/op up, a custom throughput metric
// (rounds/vtime) down, or allocs/op up:
//
//	go run ./cmd/bench -compare BENCH_2026-07-28.json BENCH_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/tensor"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric values (for example the scheduler
	// benchmarks' "rounds/vtime" virtual round throughput).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Speedup compares a benchmark against the baseline file.
type Speedup struct {
	NsRatio     float64 `json:"ns_ratio"`     // baseline ns / current ns
	AllocsRatio float64 `json:"allocs_ratio"` // baseline allocs / current allocs
}

// File is the on-disk BENCH_<date>.json schema.
type File struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPU       string `json:"cpu,omitempty"`
	// Features names the SIMD kernel tiers the host selects (tensor.
	// CPUFeatures); -compare refuses to gate wall time across files whose
	// tiers differ, since a portable-vs-AVX2-vs-AVX512 delta is a host
	// property, not a regression.
	Features   []string           `json:"features,omitempty"`
	BenchRegex string             `json:"bench_regex"`
	BenchTime  string             `json:"bench_time"`
	Benchmarks []Result           `json:"benchmarks"`
	Baseline   []Result           `json:"baseline,omitempty"`
	Speedups   map[string]Speedup `json:"speedups,omitempty"`
}

// benchLine matches the prefix of a benchmark result line,
// `BenchmarkName-8  100  12345 ns/op  ...` (the -8 suffix is optional);
// metricPair then picks up every trailing `value unit` column — B/op,
// allocs/op and any custom b.ReportMetric units.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)
	metricPair = regexp.MustCompile(`([\d.]+) (\S+)`)
	cpuLine    = regexp.MustCompile(`^cpu: (.+)$`)
)

func main() {
	bench := flag.String("bench", "MatMul64|MatMul32|ConvForward|ClientLocalEpoch|ClassifierAveraging|RoundThroughput|QuantizedMarshal|MarshalTopK|DecodeDelta", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "2s", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to record and compare against")
	compare := flag.Bool("compare", false, "compare two BENCH files (old new) and exit non-zero on regression")
	threshold := flag.Float64("threshold", 0.15, "with -compare: allowed fractional regression per metric")
	metrics := flag.String("metrics", "all", "with -compare: which metrics to gate: all | portable (allocs/op and custom throughput only — ns/op is machine-dependent, so cross-machine comparisons such as CI vs a checked-in dev-box baseline should gate on portable metrics)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bench: -compare wants exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if *metrics != "all" && *metrics != "portable" {
			fmt.Fprintf(os.Stderr, "bench: unknown -metrics %q (want all | portable)\n", *metrics)
			os.Exit(2)
		}
		regressions, err := compareFiles(flag.Arg(0), flag.Arg(1), *threshold, *metrics == "all")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d metric(s) regressed more than %.0f%%:\n", len(regressions), *threshold*100)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no hot-path metric regressed more than %.0f%% (%s -> %s)\n", *threshold*100, flag.Arg(0), flag.Arg(1))
		return
	}

	raw, err := runBenchmarks(*pkg, *bench, *benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	results, cpu := parseBenchOutput(raw)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no benchmark lines matched %q; output was:\n%s", *bench, raw)
		os.Exit(1)
	}

	f := &File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpu,
		Features:   tensor.CPUFeatures(),
		BenchRegex: *bench,
		BenchTime:  *benchtime,
		Benchmarks: results,
	}
	if *baseline != "" {
		if err := joinBaseline(f, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "bench: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + f.Date + ".json"
	}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
	for _, r := range results {
		line := fmt.Sprintf("  %-32s %12.0f ns/op %8d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if s, ok := f.Speedups[r.Name]; ok {
			line += fmt.Sprintf("   %.2fx ns, %.2fx allocs vs baseline", s.NsRatio, s.AllocsRatio)
		}
		for unit, v := range r.Extra {
			line += fmt.Sprintf("   %.2f %s", v, unit)
		}
		fmt.Println(line)
	}
}

func runBenchmarks(pkg, bench, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go test -bench: %w", err)
	}
	return string(out), nil
}

func parseBenchOutput(raw string) ([]Result, string) {
	var results []Result
	var cpu string
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			cpu = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch pair[2] {
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[pair[2]] = v
			}
		}
		results = append(results, r)
	}
	return results, cpu
}

// loadFile parses a BENCH_*.json file.
func loadFile(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s holds no benchmarks", path)
	}
	return &f, nil
}

// compareFiles joins two BENCH files by benchmark name and reports every
// shared metric that regressed by more than threshold: wall time per op up
// (only when compareNs — ns/op is meaningless across different machines),
// custom throughput metrics (higher-is-better b.ReportMetric values like
// rounds/vtime, which ride the deterministic virtual clock) down, or
// allocations per op (exactly reproducible) up. Benchmarks present in only
// one file are ignored — adding or retiring benchmarks is not a regression.
func compareFiles(oldPath, newPath string, threshold float64, compareNs bool) ([]string, error) {
	oldF, err := loadFile(oldPath)
	if err != nil {
		return nil, err
	}
	newF, err := loadFile(newPath)
	if err != nil {
		return nil, err
	}
	// Wall time measured under different kernel tiers is a host delta, not
	// a code delta: refuse to gate ns/op across feature-mismatched files.
	// Files predating the features field gate as before — absence proves
	// nothing. Portable metrics (allocs/op, virtual-clock throughput) stay
	// comparable across hosts.
	if compareNs && len(oldF.Features) > 0 && len(newF.Features) > 0 &&
		strings.Join(oldF.Features, ",") != strings.Join(newF.Features, ",") {
		return nil, fmt.Errorf("%s ran with CPU features [%s], %s with [%s]: ns/op is not comparable across kernel tiers (rerun on one host, or gate with -metrics portable)",
			oldPath, strings.Join(oldF.Features, " "), newPath, strings.Join(newF.Features, " "))
	}
	byName := make(map[string]Result, len(oldF.Benchmarks))
	for _, r := range oldF.Benchmarks {
		byName[r.Name] = r
	}
	var regressions []string
	for _, cur := range newF.Benchmarks {
		base, ok := byName[cur.Name]
		if !ok {
			continue
		}
		if compareNs && base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.1f%%)",
				cur.Name, base.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/base.NsPerOp-1)))
		}
		// A couple of allocations of jitter on a near-zero count is noise,
		// not a leak; gate on the relative change past a small floor.
		if base.AllocsPerOp >= 0 && float64(cur.AllocsPerOp) > float64(base.AllocsPerOp)*(1+threshold)+2 {
			regressions = append(regressions, fmt.Sprintf("%s: %d allocs/op -> %d allocs/op",
				cur.Name, base.AllocsPerOp, cur.AllocsPerOp))
		}
		for unit, v := range base.Extra {
			nv, ok := cur.Extra[unit]
			if !ok || v <= 0 {
				continue
			}
			if nv < v*(1-threshold) {
				regressions = append(regressions, fmt.Sprintf("%s: %.2f %s -> %.2f %s (%+.1f%%)",
					cur.Name, v, unit, nv, unit, 100*(nv/v-1)))
			}
		}
	}
	return regressions, nil
}

// joinBaseline loads a previous BENCH file, embeds its measurements, and
// computes speedup ratios for benchmarks present in both runs.
func joinBaseline(f *File, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prev File
	if err := json.Unmarshal(buf, &prev); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	f.Baseline = prev.Benchmarks
	f.Speedups = make(map[string]Speedup)
	byName := make(map[string]Result, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		byName[r.Name] = r
	}
	for _, cur := range f.Benchmarks {
		base, ok := byName[cur.Name]
		if !ok || cur.NsPerOp == 0 {
			continue
		}
		s := Speedup{NsRatio: base.NsPerOp / cur.NsPerOp}
		if cur.AllocsPerOp > 0 {
			s.AllocsRatio = float64(base.AllocsPerOp) / float64(cur.AllocsPerOp)
		} else if base.AllocsPerOp > 0 {
			s.AllocsRatio = float64(base.AllocsPerOp) // effectively ∞; report the baseline count
		}
		f.Speedups[cur.Name] = s
	}
	return nil
}
