package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// fedsim must run a tiny experiment end to end and print the CSV learning
// curve plus the final summary line.
func TestFedsimSmoke(t *testing.T) {
	out := cmdtest.Run(t, nil, "-dataset", "fashion", "-clients", "4", "-rounds", "2", "-featdim", "16")
	if !strings.Contains(out, "round,local_epochs,mean_acc") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "# final:") {
		t.Fatalf("missing final summary:\n%s", out)
	}
}

// The binary-level kill-and-resume golden: checkpoint every round, then
// resume from the middle with a fresh process; stdout and the scheduler
// trace must be byte-identical to the uninterrupted run.
func TestFedsimCheckpointResumeGolden(t *testing.T) {
	dir := t.TempDir()
	common := []string{
		"-dataset", "fashion", "-clients", "4", "-rounds", "4", "-featdim", "16",
		"-sched", "semisync", "-quorum", "2", "-stragglers", "1", "-slowdown", "2", "-seed", "3",
	}
	fullTrace := filepath.Join(dir, "full.trace")
	full := cmdtest.Run(t, nil, append(append([]string(nil), common...), "-trace", fullTrace)...)

	ckptDir := filepath.Join(dir, "ckpt")
	cmdtest.Run(t, nil, append(append([]string(nil), common...), "-checkpoint", ckptDir)...)

	resumeTrace := filepath.Join(dir, "resume.trace")
	resumed := cmdtest.Run(t, nil, append(append([]string(nil), common...),
		"-resume", filepath.Join(ckptDir, "round-00002.ckpt"), "-trace", resumeTrace)...)

	// The resumed run prints an extra "resumed from" notice on stderr;
	// compare the metric lines (stdout content).
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "fedsim: resumed") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(full) != strip(resumed) {
		t.Fatalf("resumed output differs from uninterrupted run\n--- full ---\n%s\n--- resumed ---\n%s", full, resumed)
	}
	ft, err := os.ReadFile(fullTrace)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := os.ReadFile(resumeTrace)
	if err != nil {
		t.Fatal(err)
	}
	if string(ft) != string(rt) {
		t.Fatal("resumed scheduler trace differs from uninterrupted run")
	}
}

// The dtype-generic numeric core, end to end through flags: an f32 run
// produces a learning curve, a custom -arch/-width rotation builds, and a
// dtype-mismatched resume is rejected as a usage error.
func TestFedsimDTypeAndRotationFlags(t *testing.T) {
	out := cmdtest.Run(t, nil, "-dataset", "fashion", "-clients", "4", "-rounds", "2",
		"-featdim", "16", "-dtype", "f32")
	if !strings.Contains(out, "dtype f32") || !strings.Contains(out, "# final:") {
		t.Fatalf("f32 run output:\n%s", out)
	}

	out = cmdtest.Run(t, nil, "-dataset", "fashion", "-clients", "4", "-rounds", "1",
		"-featdim", "16", "-arch", "resnet,alexnet", "-width", "1,2", "-method", "FedProto")
	if !strings.Contains(out, "custom(resnet,alexnet)") {
		t.Fatalf("rotation fleet not reported:\n%s", out)
	}

	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	common := []string{"-dataset", "fashion", "-clients", "4", "-rounds", "2", "-featdim", "16", "-dtype", "f32"}
	cmdtest.Run(t, nil, append(append([]string(nil), common...), "-checkpoint", ckptDir)...)
	out = cmdtest.RunErr(t, 2, nil, "-dataset", "fashion", "-clients", "4", "-rounds", "3",
		"-featdim", "16", "-dtype", "f64", "-resume", filepath.Join(ckptDir, "round-00001.ckpt"))
	if !strings.Contains(out, "dtype") {
		t.Fatalf("dtype mismatch not reported:\n%s", out)
	}
}

// The -resident flag: a lazy virtual fleet runs end to end, any finite
// budget reproduces any other budget byte for byte, a mid-run checkpoint
// resumes, and the flag interlocks reject in the standard usage style.
func TestFedsimLazyFleetFlags(t *testing.T) {
	common := []string{"-dataset", "fashion", "-clients", "50", "-rounds", "3",
		"-featdim", "16", "-rate", "0.1", "-method", "FedAvg", "-fleet", "homogeneous", "-seed", "3"}
	run := func(extra ...string) string {
		out := cmdtest.Run(t, nil, append(append([]string(nil), common...), extra...)...)
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			// The header names the resident budget; metrics must not.
			if !strings.HasPrefix(line, "# fedsim") && !strings.HasPrefix(line, "fedsim: resumed") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	small := run("-resident", "2")
	large := run("-resident", "40")
	if small != large {
		t.Fatalf("resident budget changed the metrics\n--- resident 2 ---\n%s\n--- resident 40 ---\n%s", small, large)
	}

	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	run("-resident", "2", "-checkpoint", ckptDir)
	resumed := run("-resident", "2", "-resume", filepath.Join(ckptDir, "round-00001.ckpt"))
	if small != resumed {
		t.Fatalf("lazy resume differs from uninterrupted run\n--- full ---\n%s\n--- resumed ---\n%s", small, resumed)
	}

	if out := cmdtest.RunErr(t, 2, nil, "-evalsample", "4"); !strings.Contains(out, "-evalsample requires -resident") {
		t.Fatalf("evalsample without resident:\n%s", out)
	}
	if out := cmdtest.RunErr(t, 2, nil, "-resident", "-1"); !strings.Contains(out, "-resident") {
		t.Fatalf("negative resident:\n%s", out)
	}
	if out := cmdtest.RunErr(t, 2, nil, "-resident", "4", "-arch", "resnet,cnn2"); !strings.Contains(out, "arch") {
		t.Fatalf("resident with arch rotation:\n%s", out)
	}
	if out := cmdtest.RunErr(t, 2, nil, "-resident", "4", "-transport", "tcp"); !strings.Contains(out, "resident") {
		t.Fatalf("resident over tcp:\n%s", out)
	}
}

// The -transport flag: tcp runs the node split over real localhost
// sockets — under any scheduler — and every virtual-clock-only feature is
// rejected with a usage error in the standard post-parse style.
func TestFedsimTransportFlag(t *testing.T) {
	out := cmdtest.Run(t, nil, "-dataset", "fashion", "-clients", "3", "-rounds", "2",
		"-featdim", "16", "-transport", "tcp")
	if !strings.Contains(out, "transport tcp") || !strings.Contains(out, "# final:") {
		t.Fatalf("tcp transport run output:\n%s", out)
	}
	if !strings.Contains(out, "rounds per wall-clock second") {
		t.Fatalf("tcp run should book wall-clock throughput:\n%s", out)
	}
	// The async and semisync schedules run over the wire too (PR 6); a
	// one-round accept check here, accuracy parity in internal/fl's tests.
	out = cmdtest.Run(t, nil, "-dataset", "fashion", "-clients", "3", "-rounds", "1",
		"-featdim", "16", "-transport", "tcp", "-sched", "async", "-staleness", "4")
	if !strings.Contains(out, "sched async") || !strings.Contains(out, "# final:") {
		t.Fatalf("tcp async run output:\n%s", out)
	}
	out = cmdtest.Run(t, nil, "-dataset", "fashion", "-clients", "3", "-rounds", "1",
		"-featdim", "16", "-transport", "tcp", "-sched", "semisync", "-quorum", "2")
	if !strings.Contains(out, "sched semisync") || !strings.Contains(out, "# final:") {
		t.Fatalf("tcp semisync run output:\n%s", out)
	}

	common := []string{"-dataset", "fashion", "-clients", "3", "-rounds", "1", "-featdim", "16", "-transport", "tcp"}
	rejects := []struct {
		extra []string
		want  string
	}{
		{[]string{"-checkpoint", t.TempDir()}, "checkpoint"},
		{[]string{"-trace", "/tmp/x.trace"}, "trace"},
		{[]string{"-leave", "0.2"}, "leave"},
		{[]string{"-stragglers", "1"}, "straggler"},
		{[]string{"-arch", "resnet,cnn2"}, "arch"},
	}
	for _, tc := range rejects {
		out := cmdtest.RunErr(t, 2, nil, append(append([]string(nil), common...), tc.extra...)...)
		if !strings.Contains(out, tc.want) {
			t.Fatalf("rejection for %v should mention %q:\n%s", tc.extra, tc.want, out)
		}
	}
	if out := cmdtest.RunErr(t, 2, nil, "-transport", "smoke-signals"); !strings.Contains(out, "unknown transport") {
		t.Fatalf("bad transport name:\n%s", out)
	}
}
