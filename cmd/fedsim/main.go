// Command fedsim runs one federated-learning experiment from the command
// line: pick a dataset stand-in, a partition, a fleet kind, a method, a
// scheduler and a wire codec, and it prints the learning curve and final
// personalized accuracy. Long runs can checkpoint every N rounds and resume
// after a crash: a resumed run replays byte-identical metrics and trace to
// an uninterrupted one (under the f64 checkpoint codec).
//
// Examples:
//
//	fedsim -dataset fashion -partition dir -method Proposed
//	fedsim -dataset cifar10 -partition skewed -method KT-pFL -clients 12 -rounds 60
//	fedsim -method Proposed -sched async -staleness 2 -decay 0.5 -stragglers 2 -slowdown 2
//	fedsim -method FedAvg -fleet homogeneous -codec i8
//	fedsim -method Proposed -checkpoint ckpts -every 2          # snapshot rounds 2,4,...
//	fedsim -method Proposed -resume ckpts/round-00004.ckpt      # continue after a kill
//	fedsim -method Proposed -sched semisync -leave 0.2 -rejoin 4 # client churn
//	fedsim -method Proposed -dtype f32                          # float32 fast path
//	fedsim -method FedProto -arch resnet,cnn2 -width 1,2        # scripted fleet rotation
//	fedsim -method Proposed -transport tcp                      # node split over real sockets
//	fedsim -method FedAvg -topology tree -aggregators 2         # 2-level aggregation tree
//	fedsim -clients 1000000 -rate 0.0001 -resident 256          # million-client virtual fleet
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/transport"
)

func main() {
	var (
		dataset    = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		partition  = flag.String("partition", "dir", "partition: dir | skewed")
		fleet      = flag.String("fleet", "heterogeneous", "fleet: heterogeneous | homogeneous | proto")
		archRot    = flag.String("arch", "", "custom fleet: comma-separated architecture rotation, e.g. resnet,shufflenet,googlenet,alexnet (overrides -fleet)")
		widthRot   = flag.String("width", "", "with -arch: comma-separated per-client width multipliers, e.g. 1,2,3")
		dtypeName  = flag.String("dtype", "f64", "model element type: f64 (golden reference) | f32 (SIMD fast path) | bf16 (2-byte storage, f32 compute)")
		method     = flag.String("method", experiments.MethodProposed, "method: Baseline | FedProto | KT-pFL | KT-pFL+weight | FedAvg | FedProx | Proposed | Proposed+weight | CA | CA+PR | CA+CL | CA+PR+CL")
		clients    = flag.Int("clients", 0, "number of clients (0 = scale default)")
		rounds     = flag.Int("rounds", 0, "communication rounds (0 = scale default)")
		rate       = flag.Float64("rate", 1.0, "client sampling rate per round, in (0, 1]")
		seed       = flag.Int64("seed", 1, "experiment seed")
		featDim    = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
		schedName  = flag.String("sched", "sync", "scheduler: sync | async | semisync")
		staleness  = flag.Int("staleness", 0, "async: drop updates staler than this many commits (0 = default 8)")
		decay      = flag.Float64("decay", 0, "staleness decay α in weight 1/(1+α·s) (0 = no decay)")
		mix        = flag.Float64("mix", 0, "commit mixing λ into committed state, in [0, 1] (0 = 1, plain averaging)")
		quorum     = flag.Int("quorum", 0, "semisync: commit after K applied updates (0 = majority; at most -clients)")
		workers    = flag.Int("workers", 0, "virtual server nodes (0 = one per client)")
		codecName  = flag.String("codec", "f64", "wire codec: f64 | f32 | i8 | bf16 | topk (f32 values at 5% density)")
		topk       = flag.Float64("topk", 0, "sparsify weight uploads to this largest-|v| fraction, in (0, 1) (0 = dense; composes with any -codec)")
		delta      = flag.Bool("delta", false, "frame weight uploads as deltas against the last committed basis")
		stragglers = flag.Int("stragglers", 0, "number of straggler clients (at most -clients)")
		slowdown   = flag.Float64("slowdown", 2, "virtual cost factor of straggler clients (>= 1)")
		leave      = flag.Float64("leave", 0, "client churn: per-engagement leave probability, in [0, 1)")
		rejoin     = flag.Float64("rejoin", 0, "client churn: virtual time away before rejoining (0 = default 2)")
		ckptDir    = flag.String("checkpoint", "", "directory to write round-NNNNN.ckpt snapshots into")
		every      = flag.Int("every", 1, "with -checkpoint: snapshot every N committed rounds")
		resume     = flag.String("resume", "", "checkpoint file to resume from (same flags as the original run)")
		traceFile  = flag.String("trace", "", "file to write the scheduler event trace to")
		ckptCodec  = flag.String("ckptcodec", "f64", "checkpoint payload codec: f64 (lossless replay) | f32 | i8")
		transName  = flag.String("transport", "inproc", "federation transport: inproc (virtual-clock engine) | tcp (server/client nodes over localhost sockets)")
		topology   = flag.String("topology", "flat", "aggregation topology: flat (every client reports to the server) | tree (clients report to -aggregators edge aggregators, which pre-reduce upstream)")
		aggCount   = flag.Int("aggregators", 0, "with -topology tree: number of edge aggregators, in [1, -clients]")
		resident   = flag.Int("resident", 0, "virtual fleet: keep at most this many materialized clients resident in memory; the rest spill to compact state buffers (0 = eager fleet, all clients materialized)")
		evalSample = flag.Int("evalsample", 0, "with -resident: evaluate a deterministic per-round sample of this many clients instead of the full fleet (0 = cohort-size default)")
	)
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fedsim: "+format+"\n", args...)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 {
		usage("unexpected arguments %q", strings.Join(args, " "))
	}

	s := experiments.Small()
	s.Seed = *seed
	if *clients < 0 {
		usage("-clients must be >= 0, got %d", *clients)
	}
	if *rounds < 0 {
		usage("-rounds must be >= 0, got %d", *rounds)
	}
	if *featDim < 0 {
		usage("-featdim must be >= 0, got %d", *featDim)
	}
	if *clients > 0 {
		s.Clients = *clients
	}
	if *rounds > 0 {
		s.Rounds = *rounds
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}

	// Flag validation: every constraint that would otherwise deadlock the
	// quorum, invert the straggler model or silently misbehave fails fast
	// here with a usage error.
	name, err := experiments.ParseDataset(*dataset)
	if err != nil {
		usage("%v", err)
	}
	kind, err := data.ParsePartition(*partition)
	if err != nil {
		usage("%v", err)
	}
	schedKind, err := fl.ParseScheduler(*schedName)
	if err != nil {
		usage("%v", err)
	}
	spec, err := comm.ParseSpec(*codecName, *topk, *delta)
	if err != nil {
		usage("%v", err)
	}
	if spec.Delta {
		// Delta bases are per-client O(model) state that lives outside the
		// checkpoint format and outside the lazy fleet's resident budget,
		// and churned clients would keep stale bases in the virtual-clock
		// model. Those runs stay dense (optionally top-k).
		switch {
		case *ckptDir != "" || *resume != "":
			usage("-delta does not compose with -checkpoint/-resume (delta bases are not checkpointed); drop -delta or checkpoint a dense run")
		case *resident > 0:
			usage("-delta does not compose with -resident (per-client delta bases defeat the O(resident) memory budget)")
		case *leave > 0:
			usage("-delta does not compose with -leave churn in the virtual-clock engine; use -transport tcp, where reconnects fall back to dense")
		}
	}
	snapCodec, err := comm.ParseCodec(*ckptCodec)
	if err != nil {
		usage("%v", err)
	}
	dtype, err := tensor.ParseDType(*dtypeName)
	if err != nil {
		usage("%v", err)
	}
	s.DType = dtype
	var arches []models.Arch
	var widths []int
	if *archRot != "" {
		if arches, err = experiments.ParseArchRotation(*archRot); err != nil {
			usage("%v", err)
		}
	}
	if *widthRot != "" {
		if *archRot == "" {
			usage("-width requires -arch")
		}
		if widths, err = experiments.ParseWidthRotation(*widthRot); err != nil {
			usage("%v", err)
		}
	}
	if *rate <= 0 || *rate > 1 {
		usage("-rate must be in (0, 1], got %v", *rate)
	}
	if *staleness < 0 {
		usage("-staleness must be >= 0, got %d", *staleness)
	}
	if *decay < 0 {
		usage("-decay must be >= 0, got %v", *decay)
	}
	if *mix < 0 || *mix > 1 {
		usage("-mix must be in [0, 1], got %v", *mix)
	}
	if *quorum < 0 || *quorum > s.Clients {
		usage("-quorum must be in [0, %d (clients)], got %d — a quorum above the client count can never be met", s.Clients, *quorum)
	}
	if *workers < 0 {
		usage("-workers must be >= 0, got %d", *workers)
	}
	if *stragglers < 0 || *stragglers > s.Clients {
		usage("-stragglers must be in [0, %d (clients)], got %d", s.Clients, *stragglers)
	}
	if *slowdown < 1 {
		usage("-slowdown must be >= 1, got %v — factors below 1 would make stragglers the fastest clients", *slowdown)
	}
	if *leave < 0 || *leave >= 1 {
		usage("-leave must be in [0, 1), got %v", *leave)
	}
	if *rejoin < 0 {
		usage("-rejoin must be >= 0, got %v", *rejoin)
	}
	if *every < 1 {
		usage("-every must be >= 1, got %d", *every)
	}
	if *resident < 0 {
		usage("-resident must be >= 0, got %d", *resident)
	}
	if *evalSample < 0 {
		usage("-evalsample must be >= 0, got %d", *evalSample)
	}
	if *evalSample > 0 && *resident == 0 {
		usage("-evalsample requires -resident (eager fleets evaluate the full fleet)")
	}
	if *resident > 0 && *archRot != "" {
		usage("-resident does not support -arch rotations yet (use -fleet)")
	}
	trName, err := transport.ParseName(*transName)
	if err != nil {
		usage("%v", err)
	}
	tree := false
	switch *topology {
	case "flat":
		if *aggCount != 0 {
			usage("-aggregators requires -topology tree")
		}
	case "tree":
		tree = true
		if *aggCount < 1 || *aggCount > s.Clients {
			usage("-topology tree needs -aggregators in [1, %d (clients)], got %d", s.Clients, *aggCount)
		}
		if schedKind != fl.SchedSync {
			usage("-topology tree requires -sched sync (the tree commits a round when every aggregator reports)")
		}
		// The tree always runs the node split — server, aggregator and
		// client nodes over a transport — so the virtual-clock-only
		// features are rejected exactly as under -transport tcp.
		switch {
		case *ckptDir != "" || *resume != "":
			usage("-topology tree does not support -checkpoint/-resume (tree checkpointing is root-only and lives in fedserver)")
		case *traceFile != "":
			usage("-topology tree does not support -trace (scheduler traces are defined on the virtual clock)")
		case *leave > 0:
			usage("-topology tree does not support -leave (node-mode churn is real: kill a client or aggregator process)")
		case *stragglers > 0:
			usage("-topology tree does not support -stragglers (node-mode stragglers are real: nice a client process)")
		case *archRot != "":
			usage("-topology tree does not support -arch rotations yet (use -fleet)")
		case *resident > 0:
			usage("-topology tree does not support -resident (node-mode clients are separate node instances; memory is bounded per node)")
		}
	default:
		usage("unknown topology %q (want flat | tree)", *topology)
	}
	if trName == "tcp" && !tree {
		// The tcp transport runs the node split: one server node plus one
		// client node per client over real localhost sockets. All three
		// schedules run on the wire (DESIGN.md §9), but the virtual-clock
		// features — simulated churn, stragglers, traces — are defined in
		// virtual time, which does not exist across sockets (DESIGN.md §8).
		// Node-mode checkpointing belongs to the fedserver process (its
		// -checkpoint/-resume flags), not to this single-process harness.
		switch {
		case *ckptDir != "" || *resume != "":
			usage("-transport tcp does not support -checkpoint/-resume here (run fedserver -checkpoint/-resume for node-mode snapshots)")
		case *traceFile != "":
			usage("-transport tcp does not support -trace (scheduler traces are defined on the virtual clock)")
		case *leave > 0:
			usage("-transport tcp does not support -leave (node-mode churn is real: kill a client process)")
		case *stragglers > 0:
			usage("-transport tcp does not support -stragglers (node-mode stragglers are real: nice a client process)")
		case *archRot != "":
			usage("-transport tcp does not support -arch rotations yet (use -fleet)")
		case *resident > 0:
			usage("-transport tcp does not support -resident (node-mode clients are separate processes; memory is bounded per process)")
		}
	}

	sched := fl.SchedulerConfig{
		Kind:            schedKind,
		MaxStaleness:    *staleness,
		Decay:           *decay,
		MixRate:         *mix,
		Quorum:          *quorum,
		Workers:         *workers,
		LeaveProb:       *leave,
		RejoinAfter:     *rejoin,
		CheckpointEvery: *every,
	}
	if *traceFile != "" || *ckptDir != "" || *resume != "" {
		// Checkpoints carry the event history, so a checkpointing run must
		// trace even without -trace — that is what lets a resumed run
		// reproduce the full trace.
		sched.Trace = &fl.Trace{}
	}
	if *stragglers > 0 {
		sched.Costs = experiments.StragglerCosts(s.Clients, *stragglers, *slowdown)
	}
	if *ckptDir != "" {
		sched.Checkpoint = ckpt.Saver(*ckptDir, snapCodec)
	}
	if *resume != "" {
		snap, err := ckpt.Load(*resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
		if snap.Kind != schedKind {
			usage("checkpoint %s was taken under the %s scheduler, -sched asks for %s", *resume, snap.Kind, schedKind)
		}
		// Lazy checkpoints hold only the touched clients, so the fleet size
		// is carried explicitly (FleetSize == 0 only in pre-lazy snapshots,
		// where every client is present).
		fleetSize := snap.FleetSize
		if fleetSize == 0 {
			fleetSize = len(snap.Clients)
		}
		if fleetSize != s.Clients {
			usage("checkpoint %s holds a %d-client fleet, flags configure %d", *resume, fleetSize, s.Clients)
		}
		if snap.Round >= s.Rounds {
			usage("checkpoint %s is already at round %d of %d — nothing to resume", *resume, snap.Round, s.Rounds)
		}
		if snap.DType != dtype {
			usage("checkpoint %s was taken at dtype %s, -dtype asks for %s", *resume, snap.DType, dtype)
		}
		sched.Resume = snap
	}

	var factory experiments.ClientFactory
	var builder experiments.ClientBuilder
	fleetDesc := *fleet
	if trName == "tcp" || tree {
		builder, _, err = experiments.NewFleetBuilder(name, kind, *fleet, s.Clients, s)
		if err != nil {
			usage("%v", err)
		}
	} else if *resident > 0 {
		builder, _, err = experiments.NewLazyFleetBuilder(name, kind, *fleet, s.Clients, s)
		if err != nil {
			usage("%v", err)
		}
		fleetDesc = fmt.Sprintf("%s/lazy(resident %d)", *fleet, *resident)
	} else if len(arches) > 0 {
		factory, _, err = experiments.NewRotationFleet(name, kind, s.Clients, s, arches, widths)
		fleetDesc = "custom(" + *archRot + ")"
	} else {
		switch *fleet {
		case "heterogeneous":
			factory, _, err = experiments.NewHeterogeneousFleet(name, kind, s.Clients, s)
		case "homogeneous":
			factory, _, err = experiments.NewHomogeneousFleet(name, kind, s.Clients, s)
		case "proto":
			factory, _, err = experiments.NewProtoFleet(name, kind, s.Clients, s)
		default:
			usage("unknown fleet %q (want heterogeneous | homogeneous | proto, or -arch for a custom rotation)", *fleet)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}

	topoDesc := ""
	if tree {
		topoDesc = fmt.Sprintf(", topology tree/%d", *aggCount)
	}
	fmt.Printf("# fedsim %s on %s (%s, %s fleet, %d clients, %d rounds, rate %.2f, sched %s, codec %s, dtype %s, transport %s%s)\n",
		*method, name, kind, fleetDesc, s.Clients, s.Rounds, *rate, schedKind, spec, dtype, trName, topoDesc)
	if sched.Resume != nil {
		fmt.Fprintf(os.Stderr, "fedsim: resumed from %s at round %d\n", *resume, sched.Resume.Round)
	}
	var hist []fl.RoundMetrics
	if tree {
		// The 2-level tree always runs the node split, over channel
		// connections for -transport inproc and real sockets for tcp.
		var tr transport.Transport
		addr := "fedsim"
		if trName == "tcp" {
			tr, addr = transport.NewTCP(transport.Options{DType: dtype, Spec: spec}), "127.0.0.1:0"
		} else {
			tr = transport.NewInproc(transport.Options{DType: dtype, Spec: spec})
		}
		hist, err = experiments.RunTreeNodes(context.Background(), *method, name, builder, s.Clients, *aggCount, s, *rate, spec, tr, addr,
			func(cfg *fl.NodeConfig) { experiments.ApplyNodeSched(cfg, sched) })
	} else if trName == "tcp" {
		// Node split over real localhost sockets: one server node plus one
		// client node per client, each speaking the wire protocol.
		tr := transport.NewTCP(transport.Options{DType: dtype, Spec: spec})
		hist, err = experiments.RunNodes(context.Background(), *method, name, builder, s.Clients, s, *rate, spec, tr, "127.0.0.1:0",
			func(cfg *fl.NodeConfig) { experiments.ApplyNodeSched(cfg, sched) })
	} else if *resident > 0 {
		hist, err = experiments.RunLazyScheduled(*method, name, builder, s.Clients, s, *rate, *resident, *evalSample, sched, spec)
	} else {
		hist, err = experiments.RunScheduled(*method, name, factory, s, *rate, sched, spec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("round,local_epochs,mean_acc,std_acc,up_bytes,down_bytes,sim_time")
	for _, m := range hist {
		fmt.Printf("%d,%d,%.4f,%.4f,%d,%d,%.2f\n",
			m.Round, m.LocalEpochs, m.MeanAcc, m.StdAcc, m.UpBytes, m.DownBytes, m.SimTime)
	}
	fin := experiments.Final(hist)
	throughput := 0.0
	if fin.SimTime > 0 {
		throughput = float64(fin.Round) / fin.SimTime
	}
	// The inproc engine books virtual time; node mode books wall clock.
	unit := "virtual time unit"
	if trName == "tcp" || tree {
		unit = "wall-clock second"
	}
	fmt.Printf("# final: %.4f ± %.4f (%.2f rounds per %s)\n", fin.MeanAcc, fin.StdAcc, throughput, unit)

	if *traceFile != "" {
		if err := writeTrace(*traceFile, sched.Trace); err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTrace dumps the scheduler event sequence as one CSV line per event,
// so kill-and-resume runs can be diffed against uninterrupted ones.
func writeTrace(path string, tr *fl.Trace) error {
	var b strings.Builder
	b.WriteString("event,client,version,vtime\n")
	for _, ev := range tr.Events {
		fmt.Fprintf(&b, "%s,%d,%d,%.4f\n", ev.Kind, ev.Client, ev.Version, ev.Time)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
