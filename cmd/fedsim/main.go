// Command fedsim runs one federated-learning experiment from the command
// line: pick a dataset stand-in, a partition, a fleet kind, a method, a
// scheduler and a wire codec, and it prints the learning curve and final
// personalized accuracy.
//
// Examples:
//
//	fedsim -dataset fashion -partition dir -method Proposed
//	fedsim -dataset cifar10 -partition skewed -method KT-pFL -clients 12 -rounds 60
//	fedsim -dataset emnist -fleet homogeneous -method FedAvg
//	fedsim -method Proposed -sched async -staleness 2 -decay 0.5 -stragglers 2 -slowdown 2
//	fedsim -method FedAvg -fleet homogeneous -codec i8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
)

func main() {
	var (
		dataset    = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		partition  = flag.String("partition", "dir", "partition: dir | skewed")
		fleet      = flag.String("fleet", "heterogeneous", "fleet: heterogeneous | homogeneous | proto")
		method     = flag.String("method", experiments.MethodProposed, "method: Baseline | FedProto | KT-pFL | KT-pFL+weight | FedAvg | FedProx | Proposed | Proposed+weight | CA | CA+PR | CA+CL | CA+PR+CL")
		clients    = flag.Int("clients", 0, "number of clients (0 = scale default)")
		rounds     = flag.Int("rounds", 0, "communication rounds (0 = scale default)")
		rate       = flag.Float64("rate", 1.0, "client sampling rate per round")
		seed       = flag.Int64("seed", 1, "experiment seed")
		featDim    = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
		schedName  = flag.String("sched", "sync", "scheduler: sync | async | semisync")
		staleness  = flag.Int("staleness", 0, "async: drop updates staler than this many commits (0 = default 8)")
		decay      = flag.Float64("decay", 0, "staleness decay α in weight 1/(1+α·s) (0 = no decay)")
		mix        = flag.Float64("mix", 0, "commit mixing λ into committed state (0 = 1, plain averaging)")
		quorum     = flag.Int("quorum", 0, "semisync: commit after K applied updates (0 = majority)")
		workers    = flag.Int("workers", 0, "virtual server nodes (0 = one per client)")
		codecName  = flag.String("codec", "f64", "wire codec: f64 | f32 | i8")
		stragglers = flag.Int("stragglers", 0, "number of straggler clients")
		slowdown   = flag.Float64("slowdown", 2, "virtual cost factor of straggler clients")
	)
	flag.Parse()

	s := experiments.Small()
	s.Seed = *seed
	if *clients > 0 {
		s.Clients = *clients
	}
	if *rounds > 0 {
		s.Rounds = *rounds
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}

	name := experiments.DatasetName(*dataset)
	kind := data.Dirichlet
	if *partition == "skewed" {
		kind = data.Skewed
	}
	schedKind, err := fl.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(2)
	}
	codec, err := comm.ParseCodec(*codecName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(2)
	}
	sched := fl.SchedulerConfig{
		Kind:         schedKind,
		MaxStaleness: *staleness,
		Decay:        *decay,
		MixRate:      *mix,
		Quorum:       *quorum,
		Workers:      *workers,
	}
	if *stragglers > 0 {
		sched.Costs = experiments.StragglerCosts(s.Clients, *stragglers, *slowdown)
	}

	var factory experiments.ClientFactory
	switch *fleet {
	case "heterogeneous":
		factory, _ = experiments.NewHeterogeneousFleet(name, kind, s.Clients, s)
	case "homogeneous":
		factory, _ = experiments.NewHomogeneousFleet(name, kind, s.Clients, s)
	case "proto":
		factory, _ = experiments.NewProtoFleet(name, kind, s.Clients, s)
	default:
		fmt.Fprintf(os.Stderr, "fedsim: unknown fleet %q\n", *fleet)
		os.Exit(2)
	}

	fmt.Printf("# fedsim %s on %s (%s, %s fleet, %d clients, %d rounds, rate %.2f, sched %s, codec %s)\n",
		*method, name, kind, *fleet, s.Clients, s.Rounds, *rate, schedKind, codec)
	hist, err := experiments.RunScheduled(*method, name, factory, s, *rate, sched, codec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("round,local_epochs,mean_acc,std_acc,up_bytes,down_bytes,sim_time")
	for _, m := range hist {
		fmt.Printf("%d,%d,%.4f,%.4f,%d,%d,%.2f\n",
			m.Round, m.LocalEpochs, m.MeanAcc, m.StdAcc, m.UpBytes, m.DownBytes, m.SimTime)
	}
	fin := experiments.Final(hist)
	throughput := 0.0
	if fin.SimTime > 0 {
		throughput = float64(fin.Round) / fin.SimTime
	}
	fmt.Printf("# final: %.4f ± %.4f (%.2f rounds per virtual time unit)\n", fin.MeanAcc, fin.StdAcc, throughput)
}
