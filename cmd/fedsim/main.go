// Command fedsim runs one federated-learning experiment from the command
// line: pick a dataset stand-in, a partition, a fleet kind and a method, and
// it prints the learning curve and final personalized accuracy.
//
// Examples:
//
//	fedsim -dataset fashion -partition dir -method Proposed
//	fedsim -dataset cifar10 -partition skewed -method KT-pFL -clients 12 -rounds 60
//	fedsim -dataset emnist -fleet homogeneous -method FedAvg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/experiments"
)

func main() {
	var (
		dataset   = flag.String("dataset", "fashion", "dataset: cifar10 | fashion | emnist")
		partition = flag.String("partition", "dir", "partition: dir | skewed")
		fleet     = flag.String("fleet", "heterogeneous", "fleet: heterogeneous | homogeneous | proto")
		method    = flag.String("method", experiments.MethodProposed, "method: Baseline | FedProto | KT-pFL | KT-pFL+weight | FedAvg | FedProx | Proposed | Proposed+weight | CA | CA+PR | CA+CL | CA+PR+CL")
		clients   = flag.Int("clients", 0, "number of clients (0 = scale default)")
		rounds    = flag.Int("rounds", 0, "communication rounds (0 = scale default)")
		rate      = flag.Float64("rate", 1.0, "client sampling rate per round")
		seed      = flag.Int64("seed", 1, "experiment seed")
		featDim   = flag.Int("featdim", 0, "shared feature dimension (0 = scale default)")
	)
	flag.Parse()

	s := experiments.Small()
	s.Seed = *seed
	if *clients > 0 {
		s.Clients = *clients
	}
	if *rounds > 0 {
		s.Rounds = *rounds
	}
	if *featDim > 0 {
		s.FeatDim = *featDim
	}

	name := experiments.DatasetName(*dataset)
	kind := data.Dirichlet
	if *partition == "skewed" {
		kind = data.Skewed
	}

	var factory experiments.ClientFactory
	switch *fleet {
	case "heterogeneous":
		factory, _ = experiments.NewHeterogeneousFleet(name, kind, s.Clients, s)
	case "homogeneous":
		factory, _ = experiments.NewHomogeneousFleet(name, kind, s.Clients, s)
	case "proto":
		factory, _ = experiments.NewProtoFleet(name, kind, s.Clients, s)
	default:
		fmt.Fprintf(os.Stderr, "fedsim: unknown fleet %q\n", *fleet)
		os.Exit(2)
	}

	fmt.Printf("# fedsim %s on %s (%s, %s fleet, %d clients, %d rounds, rate %.2f)\n",
		*method, name, kind, *fleet, s.Clients, s.Rounds, *rate)
	hist, err := experiments.Run(*method, name, factory, s, *rate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("round,local_epochs,mean_acc,std_acc,up_bytes,down_bytes")
	for _, m := range hist {
		fmt.Printf("%d,%d,%.4f,%.4f,%d,%d\n",
			m.Round, m.LocalEpochs, m.MeanAcc, m.StdAcc, m.UpBytes, m.DownBytes)
	}
	fin := experiments.Final(hist)
	fmt.Printf("# final: %.4f ± %.4f\n", fin.MeanAcc, fin.StdAcc)
}
