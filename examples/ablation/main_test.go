package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestAblationSmoke(t *testing.T) {
	out := cmdtest.Run(t, []string{"REPRO_SCALE=tiny"})
	for _, want := range []string{"CA", "CA+PR", "CA+CL", "CA+PR+CL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
