// Ablation: the Table 4 scenario — FedClassAvg's three ingredients toggled
// independently (classifier averaging CA, proximal regularization PR,
// supervised contrastive loss CL) on one heterogeneous Dir(0.5) fleet.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
)

func main() {
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Rounds = min(s.Rounds, 15)
	name := experiments.Fashion
	factory, _, err := experiments.NewHeterogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		log.Fatal(err)
	}
	h := experiments.HyperparamsFor(name, s)

	variants := []struct {
		label string
		opts  core.Options
	}{
		{"CA", core.Options{LocalEpochs: 1}},
		{"CA+PR", core.Options{LocalEpochs: 1, UseProximal: true, Rho: h.Rho}},
		{"CA+CL", core.Options{LocalEpochs: 1, UseContrastive: true}},
		{"CA+PR+CL", core.Options{LocalEpochs: 1, UseProximal: true, Rho: h.Rho, UseContrastive: true}},
	}
	fmt.Printf("Ablation on %s Dir(0.5), %d clients, %d rounds\n\n", name, s.Clients, s.Rounds)
	for _, v := range variants {
		sim := fl.NewSimulation(factory(), fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7})
		hist, err := sim.Run(core.New(v.opts))
		if err != nil {
			log.Fatal(err)
		}
		fin := experiments.Final(hist)
		fmt.Printf("  %-9s %.4f ± %.4f\n", v.label, fin.MeanAcc, fin.StdAcc)
	}
}
