// Heterogeneous: the Table 2 scenario — a fleet over the four mini
// architectures compared across methods (local baseline, FedProto, KT-pFL,
// FedClassAvg) on one dataset under both non-iid partitions.
package main

import (
	"fmt"
	"log"

	"repro/internal/data"
	"repro/internal/experiments"
)

func main() {
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Rounds = min(s.Rounds, 15) // keep the demo quick; cmd/tables runs the full setting
	name := experiments.Fashion

	for _, kind := range []data.PartitionKind{data.Dirichlet, data.Skewed} {
		fmt.Printf("== %s, %s partition, %d clients ==\n", name, kind, s.Clients)
		het, _, err := experiments.NewHeterogeneousFleet(name, kind, s.Clients, s)
		if err != nil {
			log.Fatal(err)
		}
		proto, _, err := experiments.NewProtoFleet(name, kind, s.Clients, s)
		if err != nil {
			log.Fatal(err)
		}
		for _, method := range []string{
			experiments.MethodBaseline,
			experiments.MethodFedProto,
			experiments.MethodKTpFL,
			experiments.MethodProposed,
		} {
			factory := het
			if method == experiments.MethodFedProto {
				factory = proto // FedProto needs matching feature dims (milder heterogeneity)
			}
			hist, err := experiments.Run(method, name, factory, s, 1.0)
			if err != nil {
				log.Fatal(err)
			}
			fin := experiments.Final(hist)
			fmt.Printf("  %-10s %.4f ± %.4f\n", method, fin.MeanAcc, fin.StdAcc)
		}
		fmt.Println()
	}
}
