package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestHeterogeneousSmoke(t *testing.T) {
	out := cmdtest.Run(t, []string{"REPRO_SCALE=tiny"})
	for _, want := range []string{"Dir(0.5)", "Skewed", "Proposed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
