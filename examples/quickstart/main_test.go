package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// The quickstart example must build, run to completion and print a
// learning curve with a non-empty metric line.
func TestQuickstartSmoke(t *testing.T) {
	out := cmdtest.Run(t, nil)
	if !strings.Contains(out, "mean acc") {
		t.Fatalf("no metric header in output:\n%s", out)
	}
	metricLines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "0.") && !strings.Contains(line, "client") {
			metricLines++
		}
	}
	if metricLines == 0 {
		t.Fatalf("no metric lines in output:\n%s", out)
	}
}
