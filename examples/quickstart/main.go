// Quickstart: the smallest complete FedClassAvg run. Four clients with four
// different architectures train collaboratively on a non-iid split of the
// Fashion-MNIST stand-in while exchanging only their classifier layers.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/models"
	"repro/internal/opt"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func main() {
	// Models train in float64 by default (the golden reference path); pass
	// -dtype f32 to run the same seed on the float32 fast path — final
	// accuracy lands within a couple of hundredths of the f64 run.
	dtypeFlag := flag.String("dtype", "f64", "model element type: f64 | f32 | bf16")
	flag.Parse()
	dtype, err := tensor.ParseDType(*dtypeFlag)
	if err != nil {
		log.Fatal(err)
	}
	const (
		numClients = 4
		rounds     = 10
		featDim    = 24
	)
	// 1. A dataset and a non-iid partition.
	ds := data.Generate(data.SynthFashion(16, 16, 42))
	parts, err := data.Partition(ds, numClients, data.PartitionOptions{Kind: data.Dirichlet, Alpha: 0.5, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Heterogeneous clients: each gets a different architecture but the
	// same classifier shape (featDim → classes). Model init draws from a
	// serializable xrand source, so the same seed reproduces the same
	// weights at either dtype (f32 weights are the f64 draws, rounded).
	clients := make([]*fl.Client, numClients)
	for i := range clients {
		model := models.New(models.Config{
			Arch: models.HeterogeneousSet[i%len(models.HeterogeneousSet)],
			InC:  ds.C, InH: ds.H, InW: ds.W,
			FeatDim: featDim, NumClasses: ds.NumClasses,
			DType: dtype,
		}, xrand.New(int64(100+i)))
		clients[i] = &fl.Client{
			ID:        i,
			Model:     model,
			Train:     parts[i].Train,
			Test:      parts[i].Test,
			Aug:       data.NewAugmenter(ds.C, ds.H, ds.W),
			Rng:       rand.New(rand.NewSource(int64(200 + i))),
			Optimizer: opt.NewAdam(0.002),
		}
		fmt.Printf("client %d: %-14s %3d train / %3d test examples\n",
			i, model.Name, len(parts[i].Train), len(parts[i].Test))
	}

	// 3. Run FedClassAvg.
	sim := fl.NewSimulation(clients, fl.Config{Rounds: rounds, BatchSize: 16, Seed: 7})
	algo := core.New(core.DefaultOptions())
	hist, err := sim.Run(algo)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("\n%-6s %-12s %-10s %-12s\n", "round", "mean acc", "std", "classifier bytes up")
	for _, m := range hist {
		fmt.Printf("%-6d %-12.4f %-10.4f %-12d\n", m.Round, m.MeanAcc, m.StdAcc, m.UpBytes)
	}
}
