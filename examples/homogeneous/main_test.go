package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestHomogeneousSmoke(t *testing.T) {
	out := cmdtest.Run(t, []string{"REPRO_SCALE=tiny"})
	for _, want := range []string{"FedAvg", "Proposed", "±"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
