// Homogeneous: the Table 3 scenario — every client runs the same MiniResNet
// and the classifier-only protocol is compared against the "+weight"
// variants that also average extractor weights, plus FedAvg/FedProx.
package main

import (
	"fmt"
	"log"

	"repro/internal/data"
	"repro/internal/experiments"
)

func main() {
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Rounds = min(s.Rounds, 15)
	name := experiments.Fashion
	factory, _, err := experiments.NewHomogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Homogeneous MiniResNet fleet on %s Dir(0.5), %d clients\n\n", name, s.Clients)
	for _, method := range []string{
		experiments.MethodFedAvg,
		experiments.MethodFedProx,
		experiments.MethodKTpFLWeight,
		experiments.MethodProposed,
		experiments.MethodProposedWeight,
	} {
		hist, err := experiments.Run(method, name, factory, s, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		fin := experiments.Final(hist)
		fmt.Printf("  %-17s %.4f ± %.4f\n", method, fin.MeanAcc, fin.StdAcc)
	}
}
