// Communication: the Table 5 scenario — per-round traffic measured from the
// live ledger of three runs: full-model sharing (FedAvg), KT-pFL soft
// predictions, and FedClassAvg classifier exchange.
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
)

func main() {
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Rounds = 3
	name := experiments.CIFAR10
	hom, _, err := experiments.NewHomogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		log.Fatal(err)
	}
	het, _, err := experiments.NewHeterogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		log.Fatal(err)
	}

	type runSpec struct {
		method  string
		factory experiments.ClientFactory
	}
	for _, rs := range []runSpec{
		{experiments.MethodFedAvg, hom},
		{experiments.MethodKTpFL, het},
		{experiments.MethodProposed, het},
	} {
		algo, err := experiments.NewAlgorithm(rs.method, name, s)
		if err != nil {
			log.Fatal(err)
		}
		sim := fl.NewSimulation(rs.factory(), fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7})
		if _, err := sim.Run(algo); err != nil {
			log.Fatal(err)
		}
		rounds := sim.Ledger.Rounds()
		last := rounds[len(rounds)-1]
		perClientUp := last.UpBytes / int64(s.Clients)
		fmt.Printf("%-16s per-client upload %8d B/round (total up %d B, down %d B over %d rounds)\n",
			rs.method, perClientUp, sim.Ledger.TotalUp(), sim.Ledger.TotalDown(), s.Rounds)
	}

	fmt.Println("\nStatic payload sizes (Table 5):")
	rows, err := experiments.Table5(s, name)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-28s %8d B/round  (%s)\n", r.Method, r.BytesPerRound, r.Detail)
	}

	// Quantized wire codecs: the same FedClassAvg classifier exchange under
	// float64, float32 and int8 framing, measured from the live ledger.
	fmt.Println("\nQuantized codecs (FedClassAvg uplink):")
	var f64Up int64
	for _, codec := range []comm.Codec{comm.F64, comm.F32, comm.I8} {
		algo, err := experiments.NewAlgorithm(experiments.MethodProposed, name, s)
		if err != nil {
			log.Fatal(err)
		}
		sim := fl.NewSimulation(het(), fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7, Codec: codec})
		if _, err := sim.Run(algo); err != nil {
			log.Fatal(err)
		}
		up := sim.Ledger.TotalUp()
		if codec == comm.F64 {
			f64Up = up
		}
		fmt.Printf("  %-4s %8d B total up  (%.2fx smaller than f64)\n",
			codec, up, float64(f64Up)/float64(up))
	}
}
