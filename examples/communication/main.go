// Communication: the Table 5 scenario — per-round traffic measured from the
// live ledger of three runs: full-model sharing (FedAvg), KT-pFL soft
// predictions, and FedClassAvg classifier exchange.
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fl"
)

func main() {
	s := experiments.ScaleFromEnv(experiments.Small())
	s.Rounds = 3
	name := experiments.CIFAR10
	hom, _, err := experiments.NewHomogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		log.Fatal(err)
	}
	het, _, err := experiments.NewHeterogeneousFleet(name, data.Dirichlet, s.Clients, s)
	if err != nil {
		log.Fatal(err)
	}

	type runSpec struct {
		method  string
		factory experiments.ClientFactory
	}
	for _, rs := range []runSpec{
		{experiments.MethodFedAvg, hom},
		{experiments.MethodKTpFL, het},
		{experiments.MethodProposed, het},
	} {
		algo, err := experiments.NewAlgorithm(rs.method, name, s)
		if err != nil {
			log.Fatal(err)
		}
		sim := fl.NewSimulation(rs.factory(), fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7})
		if _, err := sim.Run(algo); err != nil {
			log.Fatal(err)
		}
		rounds := sim.Ledger.Rounds()
		last := rounds[len(rounds)-1]
		perClientUp := last.UpBytes / int64(s.Clients)
		fmt.Printf("%-16s per-client upload %8d B/round (total up %d B, down %d B over %d rounds)\n",
			rs.method, perClientUp, sim.Ledger.TotalUp(), sim.Ledger.TotalDown(), s.Rounds)
	}

	fmt.Println("\nStatic payload sizes (Table 5):")
	rows, err := experiments.Table5(s, name)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-28s %8d B/round  (%s)\n", r.Method, r.BytesPerRound, r.Detail)
	}

	// Quantized wire codecs: the same FedClassAvg classifier exchange under
	// float64, float32 and int8 framing, measured from the live ledger.
	fmt.Println("\nQuantized codecs (FedClassAvg uplink):")
	var f64Up int64
	for _, codec := range []comm.Codec{comm.F64, comm.F32, comm.I8} {
		algo, err := experiments.NewAlgorithm(experiments.MethodProposed, name, s)
		if err != nil {
			log.Fatal(err)
		}
		sim := fl.NewSimulation(het(), fl.Config{Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7, Codec: codec})
		if _, err := sim.Run(algo); err != nil {
			log.Fatal(err)
		}
		up := sim.Ledger.TotalUp()
		if codec == comm.F64 {
			f64Up = up
		}
		fmt.Printf("  %-4s %8d B total up  (%.2fx smaller than f64)\n",
			codec, up, float64(f64Up)/float64(up))
	}

	// Sparse and delta framings: the same exchange with top-k sparsified
	// and delta-framed uploads, reporting the uplink ratio against dense
	// f64 and the final-accuracy cost of the loss. The `framing ...` lines
	// are machine-readable — CI gates on ratio and |accdelta|.
	fmt.Println("\nSparse & delta framings (FedClassAvg uplink):")
	var denseAcc float64
	for _, spec := range []comm.Spec{
		{Value: comm.F64},
		comm.NewSpec(comm.F32, 0.05, false),
		comm.NewSpec(comm.I8, 0, true),
		comm.NewSpec(comm.F32, 0.05, true),
	} {
		algo, err := experiments.NewAlgorithm(experiments.MethodProposed, name, s)
		if err != nil {
			log.Fatal(err)
		}
		sim := fl.NewSimulation(het(), fl.Config{
			Rounds: s.Rounds, BatchSize: s.BatchSize, Seed: s.Seed + 7,
			Codec: spec.Value, TopK: spec.Frac, Delta: spec.Delta,
		})
		hist, err := sim.Run(algo)
		if err != nil {
			log.Fatal(err)
		}
		acc := hist[len(hist)-1].MeanAcc
		up := sim.Ledger.TotalUp()
		if spec.Plain() {
			denseAcc = acc
		}
		fmt.Printf("  framing %-18s up %8d B  ratio %.2f  acc %.4f  accdelta %+.4f\n",
			spec, up, float64(f64Up)/float64(up), acc, acc-denseAcc)
	}
}
