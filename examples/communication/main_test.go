package main

import (
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

// The communication example must run at CI (tiny) scale and report live
// ledger measurements for every protocol plus the quantized codec sweep.
func TestCommunicationSmoke(t *testing.T) {
	out := cmdtest.Run(t, []string{"REPRO_SCALE=tiny"})
	for _, want := range []string{"per-client upload", "Table 5", "smaller than f64", "framing topk0.05/f32 ", "framing i8+delta", "framing topk0.05/f32+delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
